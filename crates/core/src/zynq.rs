//! The Fig. 4 test setup: Zynq PS preload through the SmartConnect.
//!
//! On the board, the ARM core of the Zynq UltraScale+ MPSoC initializes
//! the DDR4 with the weight file and the input image (`.bin` files),
//! then the SmartConnect hands the DRAM to the SoC. This harness models
//! that sequence with *timed* PS writes (unlike
//! [`crate::Soc::run_inference`], which uses the zero-cycle backdoor),
//! so the preload cost itself can be reported.

use rvnv_bus::smartconnect::Side;
use rvnv_bus::{MasterId, Request, Target};
use rvnv_compiler::Artifacts;
use rvnv_nn::Tensor;

use crate::firmware::Firmware;
use crate::soc::{InferenceResult, Soc, SocError};

/// Result of a full Fig. 4 session: preload + inference.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// Memory-clock cycles spent by the PS preloading DRAM.
    pub preload_cycles: u64,
    /// Bytes preloaded (weight file + input image).
    pub preload_bytes: u64,
    /// The inference result.
    pub inference: InferenceResult,
}

/// The board-level harness around a [`Soc`].
#[derive(Debug)]
pub struct ZynqTestbench {
    soc: Soc,
}

impl ZynqTestbench {
    /// Wrap a SoC.
    #[must_use]
    pub fn new(soc: Soc) -> Self {
        ZynqTestbench { soc }
    }

    /// The wrapped SoC.
    pub fn soc_mut(&mut self) -> &mut Soc {
        &mut self.soc
    }

    /// Run the complete Fig. 4 sequence.
    ///
    /// # Errors
    ///
    /// Returns [`SocError`] on preload bus faults or inference failure.
    pub fn run(
        &mut self,
        artifacts: &Artifacts,
        input: &Tensor,
    ) -> Result<SessionResult, SocError> {
        let fw = Firmware::build(artifacts)?;
        let input_bytes = artifacts.quantize_input(input);

        // Reset brings the mux back to the PS side.
        self.soc.reset();
        self.soc.switch_dram_to(Side::ZynqPs);

        // Timed PS preload: the PS writes through the SmartConnect in
        // 32-bit beats (conservative; the real PS uses bursts).
        let dram = self.soc.dram_path();
        let mut t: u64 = 0;
        let mut bytes: u64 = 0;
        {
            let mut port = dram.lock();
            for seg in artifacts.weights.segments() {
                t = ps_write(&mut *port, seg.addr, &seg.bytes, t)?;
                bytes += seg.bytes.len() as u64;
            }
            t = ps_write(&mut *port, artifacts.input_addr, &input_bytes, t)?;
            bytes += input_bytes.len() as u64;
        }

        // Hand over to the SoC and run. `run_firmware` resets the SoC
        // again (fresh timing) and redoes the load via the backdoor,
        // which preserves the preload contents semantics.
        let inference = self.soc.run_firmware(artifacts, &input_bytes, &fw)?;
        Ok(SessionResult {
            preload_cycles: t,
            preload_bytes: bytes,
            inference,
        })
    }
}

/// Write a buffer through the SmartConnect as the PS master.
fn ps_write<T: Target>(
    port: &mut T,
    addr: u32,
    data: &[u8],
    mut t: u64,
) -> Result<u64, rvnv_bus::BusError> {
    // Use burst writes in 4 KiB chunks, attributed to the PS.
    for (i, chunk) in data.chunks(4096).enumerate() {
        let a = addr + (i * 4096) as u32;
        // The block API carries no master id; issue a zero-length probe
        // access for the ownership check, then the burst.
        let probe = Request::write(a, 0, rvnv_bus::AccessSize::Byte).with_master(MasterId::ZynqPs);
        let _ = port.access(&probe, t)?;
        t = port.write_block(a, chunk, t)?;
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::soc::SocConfig;
    use rvnv_compiler::{compile, CompileOptions};
    use rvnv_nn::zoo;

    #[test]
    fn full_session_preloads_then_infers() {
        let net = zoo::lenet5(5);
        let artifacts = compile(&net, &CompileOptions::int8()).unwrap();
        let mut tb = ZynqTestbench::new(Soc::new(SocConfig::zcu102_nv_small()));
        let input = Tensor::random(net.input_shape(), 6);
        let session = tb.run(&artifacts, &input).unwrap();
        assert!(session.preload_bytes > 400_000, "weights + image preloaded");
        assert!(session.preload_cycles > 10_000, "preload takes real time");
        assert_eq!(session.inference.output.shape().c, 10);
    }

    #[test]
    fn preload_time_scales_with_weight_size() {
        let lenet = compile(&zoo::lenet5(1), &CompileOptions::int8()).unwrap();
        let r18 = compile(&zoo::resnet18_cifar(1), &CompileOptions::int8()).unwrap();
        let mut tb = ZynqTestbench::new(Soc::new(SocConfig::zcu102_timing_only()));
        let a = tb
            .run(&lenet, &Tensor::random(zoo::lenet5(1).input_shape(), 1))
            .unwrap();
        let b = tb
            .run(
                &r18,
                &Tensor::random(zoo::resnet18_cifar(1).input_shape(), 1),
            )
            .unwrap();
        // LeNet's weight file (~430 KB int8) is larger than thin
        // ResNet-18's (~180 KB int8).
        assert!(a.preload_bytes > b.preload_bytes);
        assert!(a.preload_cycles > b.preload_cycles);
    }
}
