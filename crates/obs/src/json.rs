//! A minimal JSON value, parser, and writer.
//!
//! The repo hand-rolls every format it emits (Chrome traces, metrics
//! dumps, `--json` reports); this module is the matching *reader*, so
//! tests can round-trip what the CLI wrote without serde. It is a strict
//! parser for the subset the repo emits — objects, arrays, strings,
//! numbers, booleans, null — which happens to be all of JSON.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value. Numbers that are non-negative integers in range
/// parse as [`Json::Int`]; everything else numeric parses as
/// [`Json::Float`].
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer (the repo's cycle counts and totals).
    Int(u64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Keys are sorted (BTreeMap), which also makes the
    /// writer's output stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parse a JSON document. Trailing garbage is an error.
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing bytes at offset {pos}"));
        }
        Ok(v)
    }

    /// Object field access (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(n) => Some(*n as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected '{lit}' at offset {pos}"))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at offset {pos}")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut map = BTreeMap::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let val = parse_value(b, pos)?;
                map.insert(key, val);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(map));
                    }
                    _ => return Err(format!("expected ',' or '}}' at offset {pos}")),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at offset {pos}"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not emitted by this repo's
                        // writers; map lone surrogates to the
                        // replacement character rather than erroring.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at offset {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (input is &str, so this is safe).
                let s = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let c = s.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    if !text.contains(['.', 'e', 'E', '-']) {
        if let Ok(n) = text.parse::<u64>() {
            return Ok(Json::Int(n));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| format!("bad number '{text}' at offset {start}"))
}

impl fmt::Display for Json {
    /// Compact (no-whitespace) JSON; object keys come out sorted.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => write!(f, "null"),
            Json::Bool(v) => write!(f, "{v}"),
            Json::Int(n) => write!(f, "{n}"),
            Json::Float(x) => {
                if x.fract() == 0.0 && x.abs() < 1e15 {
                    write!(f, "{x:.1}")
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_str(f, s),
            Json::Arr(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Json::Obj(map) => {
                write!(f, "{{")?;
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write_str(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

fn write_str(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(f, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(f, "\\\"")?,
            '\\' => write!(f, "\\\\")?,
            '\n' => write!(f, "\\n")?,
            '\r' => write!(f, "\\r")?,
            '\t' => write!(f, "\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    write!(f, "\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_the_kitchen_sink() {
        let src = r#"{"a": [1, 2.5, "x\ny", true, null], "b": {"nested": 42}}"#;
        let v = Json::parse(src).expect("parse");
        assert_eq!(
            v.get("b").and_then(|b| b.get("nested")),
            Some(&Json::Int(42))
        );
        let emitted = v.to_string();
        assert_eq!(Json::parse(&emitted).expect("reparse"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("12 34").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers_are_floats() {
        assert_eq!(Json::parse("-3").unwrap(), Json::Float(-3.0));
        assert_eq!(Json::parse("1e3").unwrap(), Json::Float(1000.0));
        assert_eq!(Json::parse("7").unwrap(), Json::Int(7));
    }
}
