//! Typed spans in modeled cycles, recorded through a zero-cost-when-disarmed
//! [`Tracer`] handle.
//!
//! The tracer follows the same one-branch discipline as the bus fabric's
//! `FaultInjector`: a disarmed handle is `sink: None`, so every recording
//! call is a single `Option` test and an immediate return. Emission never
//! computes anything the simulation did not already compute — spans carry
//! timestamps that exist regardless of whether anyone is listening — which
//! is what makes the bit- and cycle-identity contract (tracing on ==
//! tracing off) structural rather than aspirational.

use std::sync::{Arc, Mutex};

/// What a span *is*, drawn from the fixed cross-layer taxonomy
/// (docs/OBSERVABILITY.md). Every phase of modeled time the stack spends —
/// from one NVDLA op inside a firmware run up to a fleet autoscaling
/// decision — maps onto exactly one of these kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanKind {
    /// Host-side model compilation (zero modeled cycles; recorded as an
    /// instant so traces still show *when* artifacts were produced).
    Compile,
    /// Weight/input preload into the accelerator's address space.
    Preload,
    /// Firmware execution on the SoC (NVDLA ops run as child spans).
    Compute,
    /// A request sitting in an admission queue before dispatch.
    QueueWait,
    /// A failed attempt being burned or backed off under chaos.
    Retry,
    /// A worker re-warming after a crash or an autoscale-up.
    Rewarm,
    /// An autoscaler decision point (instant).
    Autoscale,
    /// A PS→SoC streaming burst (pipelined input fill).
    PsBurst,
    /// A whole batch drain (parent of its frames' compute spans).
    Drain,
}

impl SpanKind {
    /// Every kind, in declaration order (stable — the metrics schema and
    /// the CI trace checker iterate this).
    pub const ALL: [SpanKind; 9] = [
        SpanKind::Compile,
        SpanKind::Preload,
        SpanKind::Compute,
        SpanKind::QueueWait,
        SpanKind::Retry,
        SpanKind::Rewarm,
        SpanKind::Autoscale,
        SpanKind::PsBurst,
        SpanKind::Drain,
    ];

    /// Stable lowercase name (used as the Chrome-trace `cat` field and in
    /// the metrics schema).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Compile => "compile",
            SpanKind::Preload => "preload",
            SpanKind::Compute => "compute",
            SpanKind::QueueWait => "queue_wait",
            SpanKind::Retry => "retry",
            SpanKind::Rewarm => "rewarm",
            SpanKind::Autoscale => "autoscale",
            SpanKind::PsBurst => "ps_burst",
            SpanKind::Drain => "drain",
        }
    }
}

/// How a track lays out its spans.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrackKind {
    /// One lane of exclusive occupancy (a worker, a SoC): spans must not
    /// overlap, and [`Trace::validate`] enforces it.
    Sync,
    /// Overlap allowed (an admission queue holds many waiting requests at
    /// once). Exported as Chrome async events.
    Async,
}

/// Index of a track inside a [`Trace`]. A disarmed tracer hands out
/// [`TrackId::NONE`]; recording against it is a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrackId(pub u32);

impl TrackId {
    /// The id a disarmed tracer returns; never resolves to a real track.
    pub const NONE: TrackId = TrackId(u32::MAX);
}

/// Opaque handle to an emitted span, for parent refs ([`Tracer::child`])
/// and open-span completion ([`Tracer::end`]). A disarmed tracer returns
/// an empty ref; using it later stays a no-op.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanRef(pub(crate) Option<u32>);

impl SpanRef {
    /// The ref a disarmed tracer hands out.
    pub const NONE: SpanRef = SpanRef(None);
}

/// One recorded span: `[start, end]` in modeled cycles on one track.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Span {
    /// Track the span lives on.
    pub track: TrackId,
    /// Taxonomy kind.
    pub kind: SpanKind,
    /// First cycle of the phase.
    pub start: u64,
    /// One-past-the-last cycle of the phase (`end >= start`; `end ==
    /// start` is an instant).
    pub end: u64,
    /// Human label (model name, fault type, …).
    pub label: String,
    /// Index of the enclosing span, if any.
    pub parent: Option<u32>,
}

impl Span {
    /// Cycles covered (`end - start`).
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }
}

/// One named lane in the trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Track {
    /// Display name (also the Chrome `thread_name`).
    pub name: String,
    /// Sync (exclusive) or async (overlapping).
    pub kind: TrackKind,
}

/// A finished recording: tracks plus the spans on them. Obtained from
/// [`Tracer::snapshot`]; exported with
/// [`to_chrome_json`](crate::chrome::to_chrome_json).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Track table; [`TrackId`] indexes into it.
    pub tracks: Vec<Track>,
    /// All spans, in emission order.
    pub spans: Vec<Span>,
}

impl Trace {
    /// Look a track up by display name.
    pub fn track_named(&self, name: &str) -> Option<TrackId> {
        self.tracks
            .iter()
            .position(|t| t.name == name)
            .map(|i| TrackId(i as u32))
    }

    /// All spans on one track, in emission order.
    pub fn spans_on(&self, track: TrackId) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.track == track)
    }

    /// Total cycles covered by spans on `track`, counting only spans with
    /// no parent (children subdivide their parent's time; summing both
    /// would double-book).
    pub fn sum_cycles(&self, track: TrackId) -> u64 {
        self.spans_on(track)
            .filter(|s| s.parent.is_none())
            .map(Span::cycles)
            .sum()
    }

    /// Total cycles covered by top-level spans of one kind, across all
    /// tracks.
    pub fn sum_kind(&self, kind: SpanKind) -> u64 {
        self.spans
            .iter()
            .filter(|s| s.kind == kind && s.parent.is_none())
            .map(Span::cycles)
            .sum()
    }

    /// Number of spans of one kind (instants included).
    pub fn count_kind(&self, kind: SpanKind) -> usize {
        self.spans.iter().filter(|s| s.kind == kind).count()
    }

    /// Structural well-formedness, shared by the proptests and the CI
    /// trace checker:
    ///
    /// * every span's track id resolves and `end >= start`,
    /// * every child lies within `[parent.start, parent.end]` and its
    ///   parent index refers backwards,
    /// * on every [`TrackKind::Sync`] track, top-level spans do not
    ///   overlap (shared endpoints are fine).
    pub fn validate(&self) -> Result<(), String> {
        for (i, s) in self.spans.iter().enumerate() {
            if s.track.0 as usize >= self.tracks.len() {
                return Err(format!("span {i} on unknown track {}", s.track.0));
            }
            if s.end < s.start {
                return Err(format!("span {i} ends before it starts: {s:?}"));
            }
            if let Some(p) = s.parent {
                if p as usize >= i {
                    return Err(format!("span {i} has forward parent ref {p}"));
                }
                let parent = &self.spans[p as usize];
                if s.start < parent.start || s.end > parent.end {
                    return Err(format!(
                        "span {i} [{}, {}] escapes parent {p} [{}, {}]",
                        s.start, s.end, parent.start, parent.end
                    ));
                }
            }
        }
        for (t, track) in self.tracks.iter().enumerate() {
            if track.kind != TrackKind::Sync {
                continue;
            }
            let mut spans: Vec<&Span> = self
                .spans_on(TrackId(t as u32))
                .filter(|s| s.parent.is_none() && s.end > s.start)
                .collect();
            spans.sort_by_key(|s| s.start);
            for w in spans.windows(2) {
                if w[1].start < w[0].end {
                    return Err(format!(
                        "track '{}' overlaps: [{}, {}] then [{}, {}]",
                        track.name, w[0].start, w[0].end, w[1].start, w[1].end
                    ));
                }
            }
        }
        Ok(())
    }
}

/// The recording handle threaded through the stack. Cheap to clone (an
/// `Arc` at most); a [`Tracer::disarmed`] handle costs one branch per
/// call and allocates nothing, ever.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    sink: Option<Arc<Mutex<Trace>>>,
}

impl Tracer {
    /// A no-op handle: every method is one `Option` test.
    pub fn disarmed() -> Tracer {
        Tracer { sink: None }
    }

    /// A live handle recording into a fresh [`Trace`].
    pub fn armed() -> Tracer {
        Tracer {
            sink: Some(Arc::new(Mutex::new(Trace::default()))),
        }
    }

    /// Whether spans are being recorded. Emission sites that would build
    /// labels (`format!`) check this first so a disarmed run allocates
    /// nothing.
    pub fn is_armed(&self) -> bool {
        self.sink.is_some()
    }

    /// Register (or look up) a track by name. Names are unique: asking
    /// twice returns the same id, so layers can share lanes without
    /// coordinating.
    pub fn track(&self, name: &str, kind: TrackKind) -> TrackId {
        let Some(sink) = &self.sink else {
            return TrackId::NONE;
        };
        let mut trace = sink.lock().unwrap();
        if let Some(id) = trace.track_named(name) {
            return id;
        }
        trace.tracks.push(Track {
            name: name.to_string(),
            kind,
        });
        TrackId((trace.tracks.len() - 1) as u32)
    }

    /// Record a closed span `[start, end]`. Zero-length spans are
    /// dropped (use [`Tracer::instant`] for explicit markers) so the
    /// trace stays uncluttered and sums stay exact.
    pub fn span(
        &self,
        track: TrackId,
        kind: SpanKind,
        start: u64,
        end: u64,
        label: &str,
    ) -> SpanRef {
        let Some(sink) = &self.sink else {
            return SpanRef::NONE;
        };
        if end <= start || track == TrackId::NONE {
            return SpanRef::NONE;
        }
        let mut trace = sink.lock().unwrap();
        trace.spans.push(Span {
            track,
            kind,
            start,
            end,
            label: label.to_string(),
            parent: None,
        });
        SpanRef(Some((trace.spans.len() - 1) as u32))
    }

    /// Record a closed span nested under `parent` (an explicit parent
    /// ref, per the taxonomy — e.g. NVDLA ops under their firmware run).
    pub fn child(
        &self,
        parent: SpanRef,
        track: TrackId,
        kind: SpanKind,
        start: u64,
        end: u64,
        label: &str,
    ) -> SpanRef {
        let Some(sink) = &self.sink else {
            return SpanRef::NONE;
        };
        if end <= start || track == TrackId::NONE {
            return SpanRef::NONE;
        }
        let mut trace = sink.lock().unwrap();
        trace.spans.push(Span {
            track,
            kind,
            start,
            end,
            label: label.to_string(),
            parent: parent.0,
        });
        SpanRef(Some((trace.spans.len() - 1) as u32))
    }

    /// Open a span whose end is not known yet; close it with
    /// [`Tracer::end`]. Until closed it reads as an instant at `start`.
    pub fn begin(&self, track: TrackId, kind: SpanKind, start: u64, label: &str) -> SpanRef {
        let Some(sink) = &self.sink else {
            return SpanRef::NONE;
        };
        if track == TrackId::NONE {
            return SpanRef::NONE;
        }
        let mut trace = sink.lock().unwrap();
        trace.spans.push(Span {
            track,
            kind,
            start,
            end: start,
            label: label.to_string(),
            parent: None,
        });
        SpanRef(Some((trace.spans.len() - 1) as u32))
    }

    /// Close a span opened with [`Tracer::begin`].
    pub fn end(&self, span: SpanRef, end: u64) {
        let Some(sink) = &self.sink else {
            return;
        };
        if let Some(i) = span.0 {
            let mut trace = sink.lock().unwrap();
            let s = &mut trace.spans[i as usize];
            s.end = s.end.max(end);
        }
    }

    /// Record a zero-length marker (autoscale decisions, compile stamps).
    pub fn instant(&self, track: TrackId, kind: SpanKind, at: u64, label: &str) {
        let Some(sink) = &self.sink else {
            return;
        };
        if track == TrackId::NONE {
            return;
        }
        let mut trace = sink.lock().unwrap();
        trace.spans.push(Span {
            track,
            kind,
            start: at,
            end: at,
            label: label.to_string(),
            parent: None,
        });
    }

    /// Clone out everything recorded so far.
    pub fn snapshot(&self) -> Trace {
        match &self.sink {
            Some(sink) => sink.lock().unwrap().clone(),
            None => Trace::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_records_nothing_and_hands_out_none() {
        let t = Tracer::disarmed();
        assert!(!t.is_armed());
        let track = t.track("w0", TrackKind::Sync);
        assert_eq!(track, TrackId::NONE);
        let s = t.span(track, SpanKind::Compute, 0, 10, "x");
        assert_eq!(s, SpanRef::NONE);
        t.instant(track, SpanKind::Autoscale, 5, "up");
        assert_eq!(t.snapshot(), Trace::default());
    }

    #[test]
    fn tracks_dedupe_by_name() {
        let t = Tracer::armed();
        let a = t.track("worker 0", TrackKind::Sync);
        let b = t.track("worker 0", TrackKind::Sync);
        assert_eq!(a, b);
        assert_eq!(t.snapshot().tracks.len(), 1);
    }

    #[test]
    fn sums_skip_children_and_zero_spans() {
        let t = Tracer::armed();
        let w = t.track("w", TrackKind::Sync);
        let parent = t.span(w, SpanKind::Compute, 100, 200, "run");
        t.child(parent, w, SpanKind::Compute, 110, 150, "op0");
        t.span(w, SpanKind::Preload, 200, 200, "empty"); // dropped
        let trace = t.snapshot();
        assert_eq!(trace.spans.len(), 2);
        assert_eq!(trace.sum_cycles(w), 100);
        assert_eq!(trace.sum_kind(SpanKind::Compute), 100);
        trace.validate().expect("well-formed");
    }

    #[test]
    fn validate_rejects_overlap_and_escaping_children() {
        let t = Tracer::armed();
        let w = t.track("w", TrackKind::Sync);
        t.span(w, SpanKind::Compute, 0, 10, "a");
        t.span(w, SpanKind::Compute, 5, 15, "b");
        assert!(t.snapshot().validate().is_err());

        let t = Tracer::armed();
        let w = t.track("w", TrackKind::Sync);
        let p = t.span(w, SpanKind::Compute, 0, 10, "p");
        t.child(p, w, SpanKind::Compute, 5, 20, "escapes");
        assert!(t.snapshot().validate().is_err());

        // Async tracks may overlap freely.
        let t = Tracer::armed();
        let q = t.track("queue", TrackKind::Async);
        t.span(q, SpanKind::QueueWait, 0, 10, "r0");
        t.span(q, SpanKind::QueueWait, 5, 15, "r1");
        t.snapshot().validate().expect("async overlap is legal");
    }

    #[test]
    fn begin_end_closes_the_open_span() {
        let t = Tracer::armed();
        let w = t.track("w", TrackKind::Sync);
        let d = t.begin(w, SpanKind::Drain, 0, "drain");
        t.end(d, 500);
        let trace = t.snapshot();
        assert_eq!(trace.spans[0].end, 500);
        assert_eq!(trace.sum_kind(SpanKind::Drain), 500);
    }
}
