//! Hand-rolled Chrome-trace (Perfetto) JSON export.
//!
//! The Trace Event Format is what `ui.perfetto.dev` and `chrome://tracing`
//! ingest: a `{"traceEvents": [...]}` object. Like every other format in
//! this repo the writer is hand-rolled — no serde.
//!
//! Layout decisions:
//!
//! * [`TrackKind::Sync`] tracks become threads (`tid`) of one process
//!   (`pid` 1, named `modeled time`), emitted as `ph:"X"` complete
//!   events. Chrome stacks same-thread events by nesting, which matches
//!   the parent-ref discipline of [`Trace`].
//! * [`TrackKind::Async`] tracks (queues — overlap expected) each get
//!   their *own* process (`pid = 1000 + track`) of `ph:"b"`/`ph:"e"`
//!   async event pairs, because Chrome renders async events of one id
//!   on one line; a private process gives each queue a stacked lane.
//! * Timestamps are microseconds of modeled time (`cycles * 1e6 /
//!   soc_hz`), so the Perfetto ruler reads in real units; the exact
//!   cycle bounds ride along in `args` for lossless round-trips.

use crate::trace::{Trace, TrackKind};

/// Append `s` as a JSON string literal (quotes included).
fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Cycles → microseconds of modeled time at `soc_hz`.
fn us(cycles: u64, soc_hz: u64) -> f64 {
    cycles as f64 * 1.0e6 / soc_hz.max(1) as f64
}

/// Render a [`Trace`] as Chrome-trace JSON, openable in
/// `ui.perfetto.dev`. `soc_hz` is the modeled clock used to place spans
/// on a microsecond ruler.
pub fn to_chrome_json(trace: &Trace, soc_hz: u64) -> String {
    let mut out = String::with_capacity(256 + trace.spans.len() * 160);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push_event = |out: &mut String, body: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&body);
    };

    // Metadata: name the sync process and every track.
    push_event(
        &mut out,
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"modeled time\"}}"
            .to_string(),
    );
    for (i, track) in trace.tracks.iter().enumerate() {
        let mut m = String::new();
        match track.kind {
            TrackKind::Sync => {
                m.push_str(&format!(
                    "{{\"ph\":\"M\",\"pid\":1,\"tid\":{i},\"name\":\"thread_name\",\"args\":{{\"name\":"
                ));
                push_json_str(&mut m, &track.name);
                m.push_str("}}");
            }
            TrackKind::Async => {
                // A queue gets its own process so its overlapping spans
                // stack instead of collapsing onto one line.
                m.push_str(&format!(
                    "{{\"ph\":\"M\",\"pid\":{},\"tid\":0,\"name\":\"process_name\",\"args\":{{\"name\":",
                    1000 + i
                ));
                push_json_str(&mut m, &track.name);
                m.push_str("}}");
            }
        }
        push_event(&mut out, m);
    }

    for (si, span) in trace.spans.iter().enumerate() {
        let track = &trace.tracks[span.track.0 as usize];
        let ts = us(span.start, soc_hz);
        let dur = us(span.cycles(), soc_hz);
        let mut e = String::with_capacity(160);
        match track.kind {
            TrackKind::Sync => {
                if span.end == span.start {
                    // Instant marker.
                    e.push_str(&format!(
                        "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"s\":\"t\",\"ts\":{ts:.3},\"cat\":",
                        span.track.0
                    ));
                } else {
                    e.push_str(&format!(
                        "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{ts:.3},\"dur\":{dur:.3},\"cat\":",
                        span.track.0
                    ));
                }
                push_json_str(&mut e, span.kind.name());
                e.push_str(",\"name\":");
                push_json_str(&mut e, &span.label);
                e.push_str(&format!(
                    ",\"args\":{{\"start_cycle\":{},\"end_cycle\":{}}}}}",
                    span.start, span.end
                ));
                push_event(&mut out, e);
            }
            TrackKind::Async => {
                let pid = 1000 + span.track.0 as usize;
                for ph in ["b", "e"] {
                    let at = if ph == "b" { ts } else { us(span.end, soc_hz) };
                    let mut a = String::with_capacity(140);
                    a.push_str(&format!(
                        "{{\"ph\":\"{ph}\",\"pid\":{pid},\"tid\":0,\"id\":{si},\"ts\":{at:.3},\"cat\":"
                    ));
                    push_json_str(&mut a, span.kind.name());
                    a.push_str(",\"name\":");
                    push_json_str(&mut a, &span.label);
                    if ph == "b" {
                        a.push_str(&format!(
                            ",\"args\":{{\"start_cycle\":{},\"end_cycle\":{}}}",
                            span.start, span.end
                        ));
                    }
                    a.push('}');
                    push_event(&mut out, a);
                }
            }
        }
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{SpanKind, Tracer, TrackKind};

    #[test]
    fn export_is_valid_json_with_one_event_per_sync_span() {
        let t = Tracer::armed();
        let w = t.track("worker 0", TrackKind::Sync);
        let q = t.track("queue", TrackKind::Async);
        t.span(w, SpanKind::Compute, 100, 300, "lenet5 \"quoted\"");
        t.span(q, SpanKind::QueueWait, 0, 100, "req 0");
        t.instant(w, SpanKind::Autoscale, 300, "mark");
        let json = to_chrome_json(&t.snapshot(), 100_000_000);
        let v = crate::json::Json::parse(&json).expect("valid JSON");
        let events = v.get("traceEvents").and_then(|e| e.as_array()).unwrap();
        // 3 metadata + 1 X + 1 instant + b/e pair.
        assert_eq!(events.len(), 7);
        let x = events
            .iter()
            .find(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .expect("one complete event");
        assert_eq!(x.get("cat").and_then(|c| c.as_str()), Some("compute"));
        // 200 cycles at 100 MHz = 2 µs.
        assert_eq!(x.get("dur").and_then(|d| d.as_f64()), Some(2.0));
        let args = x.get("args").unwrap();
        assert_eq!(args.get("start_cycle").and_then(|s| s.as_u64()), Some(100));
    }
}
