//! Modeled-time observability for the RISC-V + NVDLA stack.
//!
//! Three pieces (docs/OBSERVABILITY.md has the operator's guide):
//!
//! * [`trace`] — a zero-cost-when-disarmed [`Tracer`] recording typed
//!   spans in *modeled cycles* (not host time) across every layer: SoC
//!   firmware runs, batch drains, serve dispatches, fleet autoscaling.
//! * [`chrome`] — a hand-rolled Chrome-trace/Perfetto JSON writer;
//!   `rv-nvdla … --trace-out FILE` produces a file `ui.perfetto.dev`
//!   opens directly.
//! * [`metrics`] — a unified [`MetricsRegistry`] (counters +
//!   fixed-bucket histograms) the typed `*Stats` structs publish into,
//!   dumped by `--metrics-out FILE` under a stable JSON schema.
//!
//! The honesty contract: arming the tracer must not move a single
//! modeled cycle or output byte. The tracer only *records* values the
//! simulation already computed — it never draws randomness, never
//! advances time — and the `determinism_fingerprint` CI gate pins a
//! traced run bit- and cycle-identical to an untraced one.

pub mod chrome;
pub mod json;
pub mod metrics;
pub mod trace;

pub use chrome::to_chrome_json;
pub use json::Json;
pub use metrics::{Histogram, MetricsRegistry, MetricsSnapshot, BUCKET_BOUNDS};
pub use trace::{Span, SpanKind, SpanRef, Trace, Tracer, Track, TrackId, TrackKind};
