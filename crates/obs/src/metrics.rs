//! A unified metrics registry: counters and fixed-bucket histograms.
//!
//! The existing typed `*Stats` structs (`FaultStats`, `PipelineStats`,
//! `BlockCacheStats`, `NvdlaStats`, …) stay the programmatic API; a
//! [`MetricsRegistry`] is the *operator* view they publish into, so one
//! `--metrics-out FILE` dump carries every layer's numbers under one
//! stable schema. Snapshots follow the repo's `.since(&baseline)` delta
//! convention.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::json::Json;

/// Upper bounds (inclusive, in modeled cycles) of the fixed histogram
/// buckets, spanning one DRAM burst to a full second at 100 MHz. The
/// last implicit bucket is `> 100_000_000` (the overflow count).
pub const BUCKET_BOUNDS: [u64; 7] = [
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
];

/// One histogram: fixed [`BUCKET_BOUNDS`] buckets plus count/sum/min/max.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Histogram {
    /// Per-bucket counts; `counts[i]` holds values `<= BUCKET_BOUNDS[i]`
    /// (and greater than the previous bound). One extra slot at the end
    /// counts overflow values.
    pub counts: [u64; BUCKET_BOUNDS.len() + 1],
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl Histogram {
    fn record(&mut self, value: u64) {
        let bucket = BUCKET_BOUNDS
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(BUCKET_BOUNDS.len());
        self.counts[bucket] += 1;
        if self.count == 0 || value < self.min {
            self.min = value;
        }
        if value > self.max {
            self.max = value;
        }
        self.count += 1;
        self.sum += value;
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// A point-in-time copy of every metric, with the repo's
/// [`since`](MetricsSnapshot::since) delta convention and a stable JSON
/// rendering (see docs/OBSERVABILITY.md for the schema).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter name → cumulative value.
    pub counters: BTreeMap<&'static str, u64>,
    /// Histogram name → cumulative histogram.
    pub histograms: BTreeMap<&'static str, Histogram>,
}

impl MetricsSnapshot {
    /// Field-wise delta against an `earlier` snapshot of the same
    /// registry (the `BlockCacheStats::since` convention). Counters,
    /// bucket counts, `count` and `sum` subtract; `min`/`max` are
    /// cumulative watermarks and carry over from `self` unchanged.
    #[must_use]
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        let counters = self
            .counters
            .iter()
            .map(|(&k, &v)| (k, v - earlier.counters.get(k).copied().unwrap_or(0)))
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(&k, h)| {
                let mut d = h.clone();
                if let Some(e) = earlier.histograms.get(k) {
                    for (c, &ec) in d.counts.iter_mut().zip(e.counts.iter()) {
                        *c -= ec;
                    }
                    d.count -= e.count;
                    d.sum -= e.sum;
                }
                (k, d)
            })
            .collect();
        MetricsSnapshot {
            counters,
            histograms,
        }
    }

    /// Stable-schema JSON: `{"counters": {...}, "histograms": {name:
    /// {"bounds": [...], "counts": [...], "count", "sum", "min", "max",
    /// "mean"}}}`. Keys are sorted; the schema is pinned in
    /// docs/OBSERVABILITY.md and tests/cli.rs.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(&k, &v)| (k.to_string(), Json::Int(v)))
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(&k, h)| {
                    let mut m = BTreeMap::new();
                    m.insert(
                        "bounds".to_string(),
                        Json::Arr(BUCKET_BOUNDS.iter().map(|&b| Json::Int(b)).collect()),
                    );
                    m.insert(
                        "counts".to_string(),
                        Json::Arr(h.counts.iter().map(|&c| Json::Int(c)).collect()),
                    );
                    m.insert("count".to_string(), Json::Int(h.count));
                    m.insert("sum".to_string(), Json::Int(h.sum));
                    m.insert("min".to_string(), Json::Int(h.min));
                    m.insert("max".to_string(), Json::Int(h.max));
                    m.insert("mean".to_string(), Json::Float(h.mean()));
                    (k.to_string(), Json::Obj(m))
                })
                .collect(),
        );
        let mut root = BTreeMap::new();
        root.insert("counters".to_string(), counters);
        root.insert("histograms".to_string(), histograms);
        Json::Obj(root)
    }
}

/// The registry itself: thread-safe, keyed by `&'static str` so call
/// sites read as documentation and keys cost nothing to hash or clone.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<MetricsSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add `delta` to a named counter (created at zero on first use).
    pub fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    /// Record one value into a named fixed-bucket histogram.
    pub fn histogram(&self, name: &'static str, value: u64) {
        let mut inner = self.inner.lock().unwrap();
        inner.histograms.entry(name).or_default().record(value);
    }

    /// Copy out the current state.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.inner.lock().unwrap().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_since_subtracts() {
        let m = MetricsRegistry::new();
        m.counter("serve.requests_offered", 10);
        let base = m.snapshot();
        m.counter("serve.requests_offered", 5);
        m.counter("serve.requests_dropped", 1);
        let delta = m.snapshot().since(&base);
        assert_eq!(delta.counters["serve.requests_offered"], 5);
        assert_eq!(delta.counters["serve.requests_dropped"], 1);
    }

    #[test]
    fn histogram_buckets_and_watermarks() {
        let m = MetricsRegistry::new();
        for v in [50, 500, 500, 2_000_000_000] {
            m.histogram("serve.queue_wait_cycles", v);
        }
        let h = &m.snapshot().histograms["serve.queue_wait_cycles"];
        assert_eq!(h.counts[0], 1); // <= 100
        assert_eq!(h.counts[1], 2); // <= 1_000
        assert_eq!(h.counts[BUCKET_BOUNDS.len()], 1); // overflow
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 50);
        assert_eq!(h.max, 2_000_000_000);
    }

    #[test]
    fn json_schema_is_stable_and_parses() {
        let m = MetricsRegistry::new();
        m.counter("a.b", 3);
        m.histogram("c.d", 42);
        let json = m.snapshot().to_json().to_string();
        let v = Json::parse(&json).expect("valid");
        assert_eq!(
            v.get("counters")
                .and_then(|c| c.get("a.b"))
                .and_then(Json::as_u64),
            Some(3)
        );
        let h = v.get("histograms").and_then(|h| h.get("c.d")).unwrap();
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(1));
        assert_eq!(h.get("sum").and_then(Json::as_u64), Some(42));
    }
}
