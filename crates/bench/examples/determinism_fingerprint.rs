//! Determinism-fingerprint gate for the fast simulator kernels.
//!
//! The decoded-block cache, the MMIO read lease with poll-loop
//! fast-forward, and the blocked convolution kernel are host-side
//! speedups only: they must not change a single modeled cycle, retired
//! instruction, or output byte. This example *proves* that for a set
//! of real firmwares and convolution shapes, and CI runs it as a hard
//! gate — any divergence aborts with a nonzero exit before anyone
//! trusts a benchmark number produced by the fast paths.
//!
//! What is asserted, per firmware variant (functional poll, functional
//! `wfi`, timing-only `wfi`, and an FP16 `nv_full` build):
//!
//! * the inference fingerprint (output bytes + instructions + cycles)
//!   is identical with the decoded-block cache on and off, on both a
//!   cold SoC and across warm repeat runs;
//! * pipeline stats, NVDLA stats (including CSB read counts, which the
//!   read lease credits back), firmware-measured cycles and arbiter
//!   waits agree exactly;
//! * a fully warm run decodes nothing: zero block-cache misses.
//!
//! Separately, the blocked convolution kernel is checked bit-for-bit
//! against the naive tap-at-a-time reference over shapes covering
//! padding, stride, grouping, depthwise and fully-clipped windows, in
//! both INT8 and FP16 (where the summation order is the contract).
//!
//! Finally, the observability layer's honesty contract is gated the
//! same way: firmware runs and serve simulations with an armed
//! `rvnv_obs::Tracer` must be bit- and cycle-identical to untraced
//! ones, while recording a structurally valid, nonempty trace.

use rvnv_bench::inference_fingerprint;
use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{compile, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_nvdla::config::Precision;
use rvnv_nvdla::descriptor::ConvDesc;
use rvnv_nvdla::engines::conv;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{InferenceResult, Soc, SocConfig};

struct Variant {
    name: &'static str,
    config: SocConfig,
    artifacts: Artifacts,
    codegen: CodegenOptions,
}

fn variants() -> Vec<Variant> {
    let net = Model::LeNet5.build(1);
    let mut int8 = CompileOptions::int8();
    int8.calib_inputs = 1;
    let int8_artifacts = compile(&net, &int8).expect("int8 compile");
    let fp16_artifacts = compile(&net, &CompileOptions::fp16()).expect("fp16 compile");
    let wfi = CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    };
    vec![
        Variant {
            name: "functional/poll/int8",
            config: SocConfig::zcu102_nv_small(),
            artifacts: int8_artifacts.clone(),
            codegen: CodegenOptions::default(),
        },
        Variant {
            name: "functional/wfi/int8",
            config: SocConfig::zcu102_nv_small(),
            artifacts: int8_artifacts.clone(),
            codegen: wfi,
        },
        Variant {
            name: "timing-only/wfi/int8",
            config: SocConfig::zcu102_timing_only(),
            artifacts: int8_artifacts,
            codegen: wfi,
        },
        Variant {
            name: "functional/poll/fp16",
            config: SocConfig {
                hw: rvnv_nvdla::HwConfig::nv_full(),
                ..SocConfig::zcu102_nv_small()
            },
            artifacts: fp16_artifacts,
            codegen: CodegenOptions::default(),
        },
    ]
}

/// Every architectural observable two equivalent runs must share.
fn assert_identical(name: &str, fast: &InferenceResult, slow: &InferenceResult) {
    assert_eq!(
        inference_fingerprint(fast),
        inference_fingerprint(slow),
        "{name}: fingerprint diverged"
    );
    assert_eq!(fast.cycles, slow.cycles, "{name}: modeled cycles");
    assert_eq!(
        fast.firmware_cycles, slow.firmware_cycles,
        "{name}: firmware mcycle delta"
    );
    assert_eq!(
        fast.instructions, slow.instructions,
        "{name}: retired instructions"
    );
    assert_eq!(fast.raw_output, slow.raw_output, "{name}: output bytes");
    assert_eq!(fast.pipeline, slow.pipeline, "{name}: pipeline stats");
    assert_eq!(fast.nvdla, slow.nvdla, "{name}: NVDLA stats");
    assert_eq!(
        fast.cpu_arbiter_wait, slow.cpu_arbiter_wait,
        "{name}: arbiter waits"
    );
}

fn check_soc_kernels() {
    for v in variants() {
        let input = Tensor::random(Model::LeNet5.build(1).input_shape(), 2);
        let bytes = v.artifacts.quantize_input(&input);
        let fw = Firmware::build_with(&v.artifacts, v.codegen).expect("fw");

        let mut off_config = v.config.clone();
        off_config.block_cache = false;

        // Cold runs on fresh SoCs, kernels on vs off.
        let mut soc_on = Soc::new(v.config.clone());
        let mut soc_off = Soc::new(off_config);
        let cold_on = soc_on.run_firmware(&v.artifacts, &bytes, &fw).expect("on");
        let cold_off = soc_off
            .run_firmware(&v.artifacts, &bytes, &fw)
            .expect("off");
        assert_identical(&format!("{} cold", v.name), &cold_on, &cold_off);
        assert_eq!(
            cold_off.block_cache.hits + cold_off.block_cache.misses,
            0,
            "{}: cache-off runs must not touch the cache",
            v.name
        );

        // Warm repeats: bit-identical to cold, and fully warm runs
        // replay everything — no block is decoded twice.
        for i in 0..3 {
            let warm_on = soc_on.run_firmware(&v.artifacts, &bytes, &fw).expect("on");
            let warm_off = soc_off
                .run_firmware(&v.artifacts, &bytes, &fw)
                .expect("off");
            assert_identical(&format!("{} warm#{i}", v.name), &warm_on, &cold_on);
            assert_identical(&format!("{} warm#{i} off", v.name), &warm_off, &cold_on);
            assert_eq!(
                warm_on.block_cache.misses, 0,
                "{}: warm run #{i} decoded a block it should have cached",
                v.name
            );
        }

        println!(
            "{:<24} fingerprint {:016x}  cycles {:>9}  instructions {:>9}  ok",
            v.name,
            inference_fingerprint(&cold_on),
            cold_on.cycles,
            cold_on.instructions,
        );
    }
}

/// The observability honesty contract as a hard gate: arming a
/// [`Tracer`] must not move a single modeled cycle, retired
/// instruction, or output byte — at the SoC level (firmware runs with
/// span emission) and at the serving level (the queueing simulation) —
/// while still actually recording spans that pass structural
/// validation.
fn check_tracing_invisible() {
    use rvnv_obs::{Tracer, TrackKind};

    // SoC level: a traced cold+warm pair against an untraced one.
    let net = Model::LeNet5.build(1);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let artifacts = compile(&net, &opt).expect("compile");
    let input = Tensor::random(net.input_shape(), 2);
    let bytes = artifacts.quantize_input(&input);
    let fw = Firmware::build_with(&artifacts, CodegenOptions::default()).expect("fw");
    let tracer = Tracer::armed();
    let mut traced = Soc::new(SocConfig::zcu102_nv_small());
    let track = tracer.track("soc", TrackKind::Sync);
    traced.set_tracer(tracer.clone(), track);
    let mut plain = Soc::new(SocConfig::zcu102_nv_small());
    for run in 0..2 {
        let t = traced
            .run_firmware(&artifacts, &bytes, &fw)
            .expect("traced");
        let p = plain.run_firmware(&artifacts, &bytes, &fw).expect("plain");
        assert_identical(&format!("traced soc run#{run}"), &t, &p);
    }
    let trace = tracer.snapshot();
    assert!(
        !trace.spans.is_empty(),
        "the armed tracer must actually record spans"
    );
    trace.validate().expect("soc trace must be well-formed");

    // Serving level: simulate vs simulate_traced on a synthetic
    // profile, spanning both worker modes.
    use rvnv_soc::batch::Policy;
    use rvnv_soc::serve::{
        simulate, simulate_traced, ArrivalProcess, RequestTrace, ServeSpec, ServiceModel,
    };
    let hz = 100_000_000u64;
    let service = ServiceModel {
        preload: vec![2_000, 4_000],
        fill: vec![2_000, 4_000],
        compute: vec![60_000, 110_000],
        compute_with: vec![vec![61_000, 62_000], vec![111_000, 112_000]],
        preload_done: vec![vec![2_000, 8_000], vec![6_000, 4_000]],
        rewarm: 20_000,
    };
    let names = vec!["a".to_string(), "b".to_string()];
    for pipelined in [false, true] {
        let spec = ServeSpec {
            process: ArrivalProcess::Poisson,
            rate_rps: 800,
            duration_ms: 40,
            seed: 42,
            workers: 2,
            policy: Policy::RoundRobin,
            pipelined,
            queue_depth: 8,
            slo_us: 5_000,
            timeout_us: 0,
            retries: 0,
            faults: None,
        };
        let reqs = RequestTrace::generate(
            spec.process,
            spec.rate_rps,
            spec.duration_cycles(hz),
            2,
            spec.seed,
            hz,
        );
        let serve_tracer = Tracer::armed();
        let on = simulate_traced(&reqs, &service, &spec, &names, hz, &serve_tracer);
        let off = simulate(&reqs, &service, &spec, &names, hz);
        assert_eq!(
            on, off,
            "pipelined={pipelined}: traced serve report diverged from untraced"
        );
        let spans = serve_tracer.snapshot();
        assert!(
            !spans.spans.is_empty(),
            "pipelined={pipelined}: the armed tracer must record spans"
        );
        spans.validate().expect("serve trace must be well-formed");
    }
    println!("tracing armed == disarmed: bit- and cycle-identical at SoC and serve level  ok");
}

/// Pseudo-random byte pattern (xorshift; no external deps).
fn pattern(len: usize, mut seed: u32) -> Vec<u8> {
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        seed ^= seed << 13;
        seed ^= seed >> 17;
        seed ^= seed << 5;
        out.push((seed >> 16) as u8);
    }
    out
}

/// Replace f16 NaN encodings with max-normal values: NaN *inputs* are
/// the one case IEEE 754 leaves underdetermined (payload propagation),
/// and encoded model data never contains them.
fn strip_f16_nans(bytes: &mut [u8]) {
    for p in bytes.chunks_exact_mut(2) {
        let v = u16::from_le_bytes([p[0], p[1]]);
        if v & 0x7C00 == 0x7C00 && v & 0x03FF != 0 {
            let clean = (v & 0x8000) | 0x7BFF;
            p.copy_from_slice(&clean.to_le_bytes());
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn conv_desc(
    in_c: u32,
    in_hw: u32,
    out_c: u32,
    k: u32,
    stride: u32,
    pad: u32,
    groups: u32,
    precision: Precision,
) -> ConvDesc {
    let out_hw = (in_hw + 2 * pad - k) / stride + 1;
    ConvDesc {
        src: 0,
        in_w: in_hw,
        in_h: in_hw,
        in_c,
        wt_addr: 0,
        wt_bytes: out_c * (in_c / groups) * k * k * precision.bytes(),
        stride,
        pad,
        out_w: out_hw,
        out_h: out_hw,
        out_c,
        kw: k,
        kh: k,
        groups,
        in_scale: 0.031,
        wt_scale: 0.27,
        precision,
    }
}

fn check_conv_kernel() {
    let shapes = [
        conv_desc(1, 3, 1, 2, 1, 0, 1, Precision::Int8),
        conv_desc(3, 8, 4, 3, 1, 1, 1, Precision::Int8),
        conv_desc(4, 7, 6, 5, 2, 2, 2, Precision::Int8),
        conv_desc(1, 1, 1, 3, 1, 1, 1, Precision::Int8), // pad > data
        conv_desc(2, 5, 2, 5, 1, 4, 1, Precision::Int8), // windows clip all edges
        conv_desc(8, 4, 8, 1, 1, 0, 8, Precision::Int8), // depthwise
        conv_desc(16, 5, 10, 5, 1, 0, 1, Precision::Int8), // fc-style whole-plane
        conv_desc(3, 8, 4, 3, 1, 1, 1, Precision::Fp16),
        conv_desc(4, 6, 6, 5, 2, 2, 2, Precision::Fp16),
        conv_desc(2, 5, 2, 5, 1, 4, 1, Precision::Fp16),
        conv_desc(16, 5, 10, 5, 1, 0, 1, Precision::Fp16),
    ];
    let mut outputs = 0usize;
    for (i, d) in shapes.into_iter().enumerate() {
        let elem = d.precision.bytes() as usize;
        let mut feature = pattern(
            (d.in_c * d.in_h * d.in_w) as usize * elem,
            0xA11CE + i as u32,
        );
        let mut weights = pattern(d.wt_bytes as usize, 0xFACE + i as u32);
        if d.precision == Precision::Fp16 {
            strip_f16_nans(&mut feature);
            strip_f16_nans(&mut weights);
        }
        let fast = conv::compute(&d, &feature, &weights);
        let slow = conv::compute_reference(&d, &feature, &weights);
        assert_eq!(fast.len(), slow.len(), "conv shape {i}: length");
        for (j, (a, b)) in fast.iter().zip(&slow).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "conv shape {i} output {j}: blocked {a} vs reference {b}"
            );
        }
        outputs += fast.len();
    }
    println!("conv blocked == reference bit-for-bit across {outputs} outputs  ok");
}

fn main() {
    check_soc_kernels();
    check_conv_kernel();
    check_tracing_invisible();
    println!("determinism fingerprint: all fast-kernel paths are architecturally invisible");
}
