//! Host-performance harness for the fast simulator kernels.
//!
//! Measures what the decoded-block cache, the MMIO read lease with
//! poll-loop fast-forward, and the blocked convolution kernel buy on
//! the host, *after* proving they change nothing architectural:
//! every configuration is fingerprint-checked against the slow path
//! before a single timing sample is taken (the full matrix lives in
//! the `determinism_fingerprint` example, which CI runs as a hard
//! gate).
//!
//! Output is a table ready to paste into `docs/BASELINES.md`: warm
//! functional and timing-only LeNet-5 inference with the kernels off
//! (the pre-optimization baseline), with only the ISS-side kernels on,
//! and with everything on, plus a blocked-vs-reference convolution
//! microbenchmark. Wall-clock numbers are host-dependent; the *ratios*
//! are what the acceptance criterion pins (warm functional ≥5×).

use std::time::Instant;

use rvnv_bench::{inference_fingerprint, print_table};
use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_nvdla::config::Precision;
use rvnv_nvdla::descriptor::ConvDesc;
use rvnv_nvdla::engines::conv;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

/// Time `iters` calls of `f`, returning milliseconds per call for the
/// fastest of `reps` passes (minimum filters scheduler noise).
fn best_ms_per(reps: u32, iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t.elapsed().as_secs_f64() * 1000.0 / f64::from(iters));
    }
    best
}

fn main() {
    let net = Model::LeNet5.build(1);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let artifacts = compile(&net, &opt).expect("compile");
    let input = Tensor::random(net.input_shape(), 2);
    let bytes = artifacts.quantize_input(&input);
    let fw = Firmware::build(&artifacts).expect("fw");

    let kernels_on = SocConfig::zcu102_nv_small();
    let kernels_off = SocConfig {
        block_cache: false,
        ..kernels_on.clone()
    };

    // Determinism first: identical fingerprints on and off, cold and
    // warm, before any timing is believed.
    let mut soc_on = Soc::new(kernels_on.clone());
    let mut soc_off = Soc::new(kernels_off.clone());
    let cold_on = soc_on.run_firmware(&artifacts, &bytes, &fw).expect("on");
    let cold_off = soc_off.run_firmware(&artifacts, &bytes, &fw).expect("off");
    assert_eq!(
        inference_fingerprint(&cold_on),
        inference_fingerprint(&cold_off),
        "fast kernels changed an architectural observable — do not trust the timings"
    );
    let warm_on = soc_on.run_firmware(&artifacts, &bytes, &fw).expect("on");
    assert_eq!(
        inference_fingerprint(&warm_on),
        inference_fingerprint(&cold_on),
        "warm run diverged from cold"
    );
    println!(
        "fingerprint {:016x} (cycles {}, instructions {}) — kernels on == off, cold == warm",
        inference_fingerprint(&cold_on),
        cold_on.cycles,
        cold_on.instructions
    );

    let mut rows: Vec<Vec<String>> = Vec::new();
    let run = |soc: &mut Soc, reps, iters| {
        best_ms_per(reps, iters, || {
            soc.run_firmware(&artifacts, &bytes, &fw).expect("run");
        })
    };

    // Warm functional inference: the accuracy flow's hot path.
    let func_off = run(&mut soc_off, 3, 5);
    let func_on = run(&mut soc_on, 5, 20);
    rows.push(vec![
        "warm functional".into(),
        format!("{func_off:.3}"),
        format!("{func_on:.3}"),
        format!("{:.1}x", func_off / func_on),
    ]);

    // Warm timing-only inference: the sweep flow's hot path.
    let mut t_on = Soc::new(SocConfig::zcu102_timing_only());
    let mut t_off = Soc::new(SocConfig {
        block_cache: false,
        ..SocConfig::zcu102_timing_only()
    });
    t_on.load_artifacts(&artifacts).expect("preload");
    t_off.load_artifacts(&artifacts).expect("preload");
    let timing_off = run(&mut t_off, 3, 5);
    let timing_on = run(&mut t_on, 5, 20);
    rows.push(vec![
        "warm timing-only".into(),
        format!("{timing_off:.3}"),
        format!("{timing_on:.3}"),
        format!("{:.1}x", timing_off / timing_on),
    ]);

    // Convolution kernel in isolation: LeNet-5's largest layer shape.
    let d = ConvDesc {
        src: 0,
        in_w: 12,
        in_h: 12,
        in_c: 6,
        wt_addr: 0,
        wt_bytes: 16 * 6 * 25,
        stride: 1,
        pad: 0,
        out_w: 8,
        out_h: 8,
        out_c: 16,
        kw: 5,
        kh: 5,
        groups: 1,
        in_scale: 0.031,
        wt_scale: 0.27,
        precision: Precision::Int8,
    };
    let feature = vec![7u8; (d.in_c * d.in_h * d.in_w) as usize];
    let weights = vec![3u8; d.wt_bytes as usize];
    assert_eq!(
        conv::compute(&d, &feature, &weights),
        conv::compute_reference(&d, &feature, &weights),
        "blocked conv diverged from reference"
    );
    let conv_off = best_ms_per(5, 200, || {
        std::hint::black_box(conv::compute_reference(&d, &feature, &weights));
    });
    let conv_on = best_ms_per(5, 200, || {
        std::hint::black_box(conv::compute(&d, &feature, &weights));
    });
    rows.push(vec![
        "conv kernel (reference vs blocked)".into(),
        format!("{conv_off:.3}"),
        format!("{conv_on:.3}"),
        format!("{:.1}x", conv_off / conv_on),
    ]);

    print_table(
        "Simulator kernel speedups — LeNet-5, host ms/run (min of reps)",
        &["path", "cache off", "cache on", "speedup"],
        &rows,
    );
    println!(
        "\nnote: 'cache off' disables the ISS-side kernels (block cache, read lease, \
         fast-forward) but the blocked conv is always in; the naive-conv seed baseline \
         is recorded in docs/BASELINES.md."
    );
    println!(
        "\nblock cache: {} hits, {} misses per warm run; {} status polls elided by the MMIO read lease",
        warm_on.block_cache.hits, warm_on.block_cache.misses, warm_on.elided_polls
    );
}
