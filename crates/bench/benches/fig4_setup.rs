//! Fig. 4 — the overall test setup on the ZCU102.
//!
//! Reproduces the board-level sequence: the Zynq PS preloads the DRAM
//! with the weight file and input image through the AXI SmartConnect,
//! ownership switches to the SoC, and the SoC runs inference through
//! the AXI interconnect / clock-domain crossing. Reports preload vs
//! inference time and demonstrates the mutual exclusion the mux
//! provides.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::{compile_nv_small, format_time, print_table, table2_soc_config};
use rvnv_bus::smartconnect::Side;
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::soc::Soc;
use rvnv_soc::zynq::ZynqTestbench;

fn run_sessions() {
    let mut rows = Vec::new();
    for model in [Model::LeNet5, Model::ResNet18] {
        let net = model.build(1);
        let artifacts = compile_nv_small(model);
        let mut tb = ZynqTestbench::new(Soc::new(table2_soc_config()));
        let input = Tensor::random(net.input_shape(), 3);
        let session = tb.run(&artifacts, &input).expect("session");
        rows.push(vec![
            model.name().to_string(),
            session.preload_bytes.to_string(),
            format_time(session.preload_cycles, 100_000_000),
            format_time(session.inference.cycles, 100_000_000),
            session.inference.firmware_bytes.to_string(),
        ]);
    }
    print_table(
        "Fig. 4: Zynq preload + SoC inference sessions @100MHz",
        &[
            "Model",
            "Preload bytes",
            "Preload time",
            "Inference time",
            "Firmware bytes",
        ],
        &rows,
    );

    // Mutual exclusion: while the PS owns the DRAM, the SoC is locked out.
    let soc = Soc::new(table2_soc_config());
    soc.switch_dram_to(Side::ZynqPs);
    let mut dram = soc.dram_path();
    use rvnv_bus::{Request, Target};
    let denied = dram.access(&Request::read32(0), 0);
    println!(
        "\nSmartConnect exclusion: SoC-side read while PS owns DRAM -> {:?}",
        denied.err().map(|e| e.to_string())
    );
}

fn bench(c: &mut Criterion) {
    run_sessions();
    let artifacts = compile_nv_small(Model::LeNet5);
    let net = Model::LeNet5.build(1);
    let input = Tensor::random(net.input_shape(), 3);
    let mut group = c.benchmark_group("fig4");
    group.sample_size(10);
    group.bench_function("full_session_lenet5", |b| {
        let mut tb = ZynqTestbench::new(Soc::new(table2_soc_config()));
        b.iter(|| {
            tb.run(&artifacts, &input)
                .expect("session")
                .inference
                .cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
