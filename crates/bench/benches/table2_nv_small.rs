//! Table II — `nv_small` SoC evaluation (FPGA implementation results).
//!
//! Regenerates the paper's rows: for LeNet-5, ResNet-18 and ResNet-50,
//! the layer count, input size, model size, processing time at 100 MHz,
//! and the Linux-stack baseline at 50 MHz ([8]). The criterion group
//! measures the full bare-metal LeNet-5 inference.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::{
    compile_nv_small, format_time, input_string, model_size_string, print_table, table2_soc_config,
};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::baseline::LinuxRuntimeModel;
use rvnv_soc::soc::Soc;

/// Paper values for the comparison column.
fn paper_row(model: Model) -> (&'static str, &'static str, &'static str) {
    match model {
        Model::LeNet5 => ("9", "4.8 ms", "263 ms"),
        Model::ResNet18 => ("86", "16.2 ms", "NA"),
        Model::ResNet50 => ("228", "1.1 s", "2.5 s"),
        _ => ("-", "-", "-"),
    }
}

fn run_table2() {
    let baseline = LinuxRuntimeModel::esp_ariane_50mhz();
    let mut rows = Vec::new();
    for model in Model::NV_SMALL {
        let net = model.build(1);
        let artifacts = compile_nv_small(model);
        let mut soc = Soc::new(table2_soc_config());
        let input = Tensor::random(net.input_shape(), 7);
        let result = soc
            .run_inference(&artifacts, &input)
            .expect("table2 inference");
        let hz = soc.config().soc_hz;

        // Baseline: same hardware cycles, plus the Linux runtime, at 50 MHz.
        let data_bytes = artifacts.weights.total_bytes() as u64 + artifacts.input_len as u64;
        let base_cycles =
            baseline.total_cycles(result.cycles, artifacts.ops.len() as u64, data_bytes);

        let (paper_layers, paper_t, paper_base) = paper_row(model);
        rows.push(vec![
            model.name().to_string(),
            format!("{} ({paper_layers})", net.layer_count()),
            input_string(model),
            model_size_string(model),
            format!("{} ({paper_t})", format_time(result.cycles, hz)),
            format!(
                "{} ({paper_base})",
                format_time(base_cycles, baseline.clock_hz)
            ),
        ]);
    }
    print_table(
        "Table II: nv_small SoC evaluation — measured (paper)",
        &[
            "Model",
            "Layers",
            "Input",
            "Model Size",
            "Proc. Time @100MHz",
            "Proc. Time @50MHz [8]",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    run_table2();
    // Criterion: the bare-metal LeNet-5 inference end to end.
    let artifacts = compile_nv_small(Model::LeNet5);
    let net = Model::LeNet5.build(1);
    let input = Tensor::random(net.input_shape(), 7);
    let mut soc = Soc::new(table2_soc_config());
    let mut group = c.benchmark_group("table2");
    group.sample_size(10);
    group.bench_function("lenet5_bare_metal_inference", |b| {
        b.iter(|| soc.run_inference(&artifacts, &input).expect("inference"))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
