//! Host-throughput benches for the compile-once/run-many hot path.
//!
//! The modeled SoC never recompiles a model or restreams weights between
//! frames — but the *simulator* used to: every `run_inference` rebuilt
//! the 512 MB DRAM fabric and reloaded the weight image, and every CLI
//! invocation recompiled from scratch. These benches measure what each
//! layer of that overhead costs on the host, and what the resident-
//! weights warm path recovers:
//!
//! * `cold_process/*` — compile + firmware build + fresh SoC + run:
//!   the per-invocation cost of the pre-cache CLI flow.
//! * `cold_soc/*` — artifacts and firmware prebuilt, but a fresh SoC
//!   (weight preload included) per inference.
//! * `warm/*` — resident weights, in-place reset: the hot path.
//! * `sweep/*` — an 8-point system-clock sweep (timing-only, `wfi`
//!   firmware), serial vs fanned out with `std::thread::scope`.
//!
//! Each variant runs twice: `functional` (default poll firmware, full
//! compute — the accuracy flow) and `sweep_mode` (timing-only, `wfi`
//! firmware — the configuration-sweep flow). Warm results are asserted
//! bit-identical to cold before any timing starts, so the bench doubles
//! as a determinism check in CI's `--test` mode.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{compile, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

fn quick_int8() -> CompileOptions {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    opt
}

fn wfi_codegen() -> CodegenOptions {
    CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    }
}

struct Variant {
    name: &'static str,
    config: SocConfig,
    codegen: CodegenOptions,
}

fn variants() -> [Variant; 2] {
    [
        Variant {
            name: "functional",
            config: SocConfig::zcu102_nv_small(),
            codegen: CodegenOptions::default(),
        },
        Variant {
            name: "sweep_mode",
            config: SocConfig::zcu102_timing_only(),
            codegen: wfi_codegen(),
        },
    ]
}

fn bench_cold_vs_warm(c: &mut Criterion) {
    let net = Model::LeNet5.build(1);
    let opt = quick_int8();
    let input = Tensor::random(net.input_shape(), 7);

    for v in variants() {
        let artifacts = compile(&net, &opt).expect("compile");
        let fw = Firmware::build_with(&artifacts, v.codegen).expect("fw");
        let input_bytes = artifacts.quantize_input(&input);

        // Determinism oracle before any timing: warm runs must be
        // bit-identical to a cold run on a fresh SoC.
        let mut cold_soc = Soc::new(v.config.clone());
        let cold = cold_soc
            .run_firmware(&artifacts, &input_bytes, &fw)
            .expect("cold run");
        let mut warm_soc = Soc::new(v.config.clone());
        warm_soc.load_artifacts(&artifacts).expect("preload");
        for _ in 0..2 {
            let w = warm_soc
                .run_firmware(&artifacts, &input_bytes, &fw)
                .expect("warm run");
            assert_eq!(w.cycles, cold.cycles, "warm cycles must be bit-identical");
            assert_eq!(w.raw_output, cold.raw_output, "warm output must match");
        }

        let mut g = c.benchmark_group(&format!("hot_path_{}", v.name));
        g.sample_size(10);
        g.bench_function("cold_process", |b| {
            b.iter(|| {
                let a = compile(&net, &opt).expect("compile");
                let f = Firmware::build_with(&a, v.codegen).expect("fw");
                let mut soc = Soc::new(v.config.clone());
                soc.run_firmware(&a, &a.quantize_input(&input), &f)
                    .expect("run")
                    .cycles
            })
        });
        g.bench_function("cold_soc", |b| {
            b.iter(|| {
                let mut soc = Soc::new(v.config.clone());
                soc.run_firmware(&artifacts, &input_bytes, &fw)
                    .expect("run")
                    .cycles
            })
        });
        g.bench_function("warm", |b| {
            b.iter(|| {
                warm_soc
                    .run_firmware(&artifacts, &input_bytes, &fw)
                    .expect("run")
                    .cycles
            })
        });
        g.finish();
    }
}

/// The swept system clocks (MHz) against the fixed 100 MHz MIG.
const SWEEP_CLOCKS: [u64; 8] = [25, 50, 75, 100, 125, 150, 200, 300];

fn sweep_config(soc_mhz: u64) -> SocConfig {
    let mut config = SocConfig::zcu102_timing_only();
    config.soc_hz = soc_mhz * 1_000_000;
    config
}

fn run_sweep_point(artifacts: &Artifacts, input_bytes: &[u8], fw: &Firmware, soc_mhz: u64) -> u64 {
    let mut soc = Soc::new(sweep_config(soc_mhz));
    soc.run_firmware(artifacts, input_bytes, fw)
        .expect("sweep point")
        .cycles
}

fn bench_sweep_serial_vs_parallel(c: &mut Criterion) {
    let net = Model::LeNet5.build(1);
    let artifacts = compile(&net, &quick_int8()).expect("compile");
    let fw = Firmware::build_with(&artifacts, wfi_codegen()).expect("fw");
    let input = Tensor::random(net.input_shape(), 7);
    let input_bytes = artifacts.quantize_input(&input);

    // Parallel and serial sweeps must agree point-for-point.
    let serial: Vec<u64> = SWEEP_CLOCKS
        .iter()
        .map(|&mhz| run_sweep_point(&artifacts, &input_bytes, &fw, mhz))
        .collect();
    let parallel = parallel_sweep(&artifacts, &input_bytes, &fw, SWEEP_CLOCKS.len());
    assert_eq!(serial, parallel, "thread fan-out must not change results");

    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut g = c.benchmark_group("sweep_8pt");
    g.sample_size(10);
    g.bench_function("serial", |b| {
        b.iter(|| {
            SWEEP_CLOCKS
                .iter()
                .map(|&mhz| run_sweep_point(&artifacts, &input_bytes, &fw, mhz))
                .sum::<u64>()
        })
    });
    g.bench_function(&format!("parallel_{threads}threads"), |b| {
        b.iter(|| {
            parallel_sweep(&artifacts, &input_bytes, &fw, threads)
                .iter()
                .sum::<u64>()
        })
    });
    g.finish();
}

/// Fan the sweep points out over `threads` workers; each worker owns
/// its SoC, all share the artifacts.
fn parallel_sweep(
    artifacts: &Artifacts,
    input_bytes: &[u8],
    fw: &Firmware,
    threads: usize,
) -> Vec<u64> {
    rvnv_soc::sweep::fan_out(SWEEP_CLOCKS.len(), threads, |i| {
        run_sweep_point(artifacts, input_bytes, fw, SWEEP_CLOCKS[i])
    })
}

criterion_group!(hot_path, bench_cold_vs_warm, bench_sweep_serial_vs_parallel);
criterion_main!(hot_path);
