//! Host-throughput bench for the multi-model resident batch scheduler.
//!
//! The claim under test: with several weight images resident in one
//! DRAM, an interleaved multi-model frame stream runs entirely warm —
//! switching models between frames costs an in-place reset, not a
//! weight restream — and the results stay **bit-identical** to each
//! model run cold on a fresh SoC. The identity is asserted before any
//! timing starts, so `cargo bench -- --test` doubles as the determinism
//! check in CI.
//!
//! * `two_model_rr_warm` / `two_model_sqf_warm` — drain a 6-frame
//!   interleaved queue (3 per model) on one resident SoC, per policy.
//! * `two_model_rr_pipelined` — the same queue with the input preload
//!   **pipelined**: frame N+1's input streams through the SmartConnect
//!   into the other double-buffer slot while frame N computes. Output
//!   bytes are asserted bit-identical to the serial drain; the modeled
//!   makespan and warm-frame latency are asserted *lower* (the preload
//!   hides behind compute, minus real arbiter contention).
//! * `cold_soc_per_frame` — the same 6 frames, each on a freshly built
//!   SoC with its weight preload: the pre-residency serving cost.
//! * `parallel_workers` — the same stream sharded across worker SoC
//!   replicas via `rvnv_soc::batch::run_parallel` (equal to the serial
//!   drain on a 1-core pin; see docs/BASELINES.md).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::batch::{
    layout_models, run_parallel, BatchScheduler, Frame, PipelinedScheduler, Policy,
};
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

fn wfi_codegen() -> CodegenOptions {
    CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    }
}

/// Two LeNet-5 compilations (different seeds → different weights) at
/// disjoint DRAM bases, plus an interleaved 6-frame stream.
fn setup() -> (Vec<Arc<Artifacts>>, Vec<Frame>) {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let nets = [Model::LeNet5.build(1), Model::LeNet5.build(2)];
    let cache = ArtifactCache::new();
    let artifacts = layout_models(&cache, &nets, &opt).expect("layout");
    let frames = (0..6)
        .map(|i| {
            let m = i % 2;
            let input = Tensor::random(nets[m].input_shape(), 9000 + i as u64);
            Frame {
                model: m,
                bytes: artifacts[m].quantize_input(&input),
            }
        })
        .collect();
    (artifacts, frames)
}

fn scheduler(config: &SocConfig, artifacts: &[Arc<Artifacts>], policy: Policy) -> BatchScheduler {
    let mut sched = BatchScheduler::new(config.clone(), policy);
    for a in artifacts {
        sched.add_model(a.clone(), wfi_codegen()).expect("pin");
    }
    sched
}

fn drain(sched: &mut BatchScheduler, frames: &[Frame]) -> u64 {
    for f in frames {
        sched.enqueue_bytes(f.model, f.bytes.clone()).expect("enq");
    }
    sched.run().expect("drain").total_cycles()
}

fn bench_batch_throughput(c: &mut Criterion) {
    let config = SocConfig::zcu102_timing_only();
    let (artifacts, frames) = setup();
    let fws: Vec<Firmware> = artifacts
        .iter()
        .map(|a| Firmware::build_with(a, wfi_codegen()).expect("fw"))
        .collect();

    // Determinism oracle before any timing: every warm multi-model
    // frame must be bit-identical to the same frame cold on a fresh
    // single-model SoC.
    let mut warm = scheduler(&config, &artifacts, Policy::RoundRobin);
    for f in &frames {
        warm.enqueue_bytes(f.model, f.bytes.clone()).expect("enq");
    }
    let mut served = Vec::new();
    warm.run_with(|m, r| served.push((m, r.cycles, r.raw_output.clone())))
        .expect("warm drain");
    let mut next = [0usize; 2];
    for (m, cycles, raw) in &served {
        let frame = frames
            .iter()
            .filter(|f| f.model == *m)
            .nth(next[*m])
            .expect("frame");
        next[*m] += 1;
        let mut cold = Soc::new(config.clone());
        let c = cold
            .run_firmware(&artifacts[*m], &frame.bytes, &fws[*m])
            .expect("cold");
        assert_eq!(*cycles, c.cycles, "warm batch must be bit-identical");
        assert_eq!(*raw, c.raw_output, "warm batch output must match cold");
    }

    // Pipelined oracle: overlapping frame N+1's preload with frame N's
    // compute must move cycles, never data — and must actually *win*:
    // lower modeled makespan and warm-frame latency than the serial
    // drain that pays each preload on the critical path.
    let serial_report = {
        for f in &frames {
            warm.enqueue_bytes(f.model, f.bytes.clone()).expect("enq");
        }
        warm.run().expect("serial reference drain")
    };
    let mut piped = PipelinedScheduler::new(config.clone(), Policy::RoundRobin);
    for a in &artifacts {
        piped.add_model(a.clone(), wfi_codegen()).expect("pin");
    }
    for f in &frames {
        piped.enqueue_bytes(f.model, f.bytes.clone()).expect("enq");
    }
    let mut piped_served = Vec::new();
    let piped_report = piped
        .run_with(|m, r| piped_served.push((m, r.raw_output.clone())))
        .expect("pipelined drain");
    for ((m, cycles_raw, raw), (mp, raw_p)) in served.iter().zip(&piped_served) {
        let _ = cycles_raw;
        assert_eq!(m, mp, "same rr service order");
        assert_eq!(raw, raw_p, "pipelined output bytes must match serial");
    }
    assert!(
        piped_report.makespan_cycles < serial_report.makespan_cycles,
        "pipeline must shorten the stream: {} vs {}",
        piped_report.makespan_cycles,
        serial_report.makespan_cycles
    );
    assert!(
        piped_report.warm_frame_latency() < serial_report.warm_frame_latency(),
        "pipeline must cut warm frame latency: {} vs {}",
        piped_report.warm_frame_latency(),
        serial_report.warm_frame_latency()
    );

    let mut g = c.benchmark_group("batch_throughput");
    g.sample_size(10);
    g.bench_function("two_model_rr_warm", |b| {
        b.iter(|| drain(&mut warm, &frames))
    });
    let mut sqf = scheduler(&config, &artifacts, Policy::ShortestQueueFirst);
    g.bench_function("two_model_sqf_warm", |b| {
        b.iter(|| drain(&mut sqf, &frames))
    });
    g.bench_function("two_model_rr_pipelined", |b| {
        b.iter(|| {
            for f in &frames {
                piped.enqueue_bytes(f.model, f.bytes.clone()).expect("enq");
            }
            piped.run().expect("pipelined drain").makespan_cycles
        })
    });
    g.bench_function("cold_soc_per_frame", |b| {
        b.iter(|| {
            frames
                .iter()
                .map(|f| {
                    let mut soc = Soc::new(config.clone());
                    soc.run_firmware(&artifacts[f.model], &f.bytes, &fws[f.model])
                        .expect("cold frame")
                        .cycles
                })
                .sum::<u64>()
        })
    });
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    g.bench_function(&format!("parallel_{threads}workers"), |b| {
        b.iter(|| {
            run_parallel(
                &config,
                Policy::RoundRobin,
                &artifacts,
                wfi_codegen(),
                &frames,
                threads,
            )
            .expect("fan-out")
            .total_cycles()
        })
    });
    g.finish();
}

criterion_group!(batch_throughput, bench_batch_throughput);
criterion_main!(batch_throughput);
