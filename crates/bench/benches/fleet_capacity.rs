//! Host-cost bench for the fleet subsystem: what a capacity-planning
//! sweep costs on the host.
//!
//! Three costs matter:
//!
//! * `calibrate_2pool` — compiling both hardware classes and measuring
//!   each pool's per-model/per-pair service profile on real SoCs (paid
//!   once per fleet; profiles are deduped by class × residency).
//! * `plan_knee_point` / `plan_saturated` — one pure balancer +
//!   autoscaler queueing simulation of a 1-second diurnal trace over a
//!   2-pool heterogeneous fleet, at the knee and deep in overload.
//!   This is the per-point cost of `examples/capacity_planner.rs`'s
//!   knee-finding sweep ("smallest N with p99 < SLO").
//! * `run_spot_replay` — a short full run: plan plus the cycle-exact
//!   spot-replay of K sampled dispatch windows on real per-pool SoCs.
//!
//! Before timing, the bench asserts the fleet oracles (determinism and
//! zero spot-replay divergence on the heterogeneous fleet — the PR-6
//! fingerprint-first convention), so `cargo bench -- --test` doubles
//! as a correctness check in CI.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::CompileOptions;
use rvnv_nn::zoo::Model;
use rvnv_nn::Network;
use rvnv_soc::fleet::{Fleet, FleetSpec, PoolSpec, RoutePolicy, SocClass, TrafficShape};

fn nets() -> [Network; 2] {
    [Model::LeNet5.build(1), Model::ResNet18.build(1)]
}

fn options() -> CompileOptions {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    opt
}

fn wfi_codegen() -> CodegenOptions {
    CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    }
}

fn pool(class: SocClass, workers: usize) -> PoolSpec {
    PoolSpec {
        class,
        workers,
        min_workers: workers,
        max_workers: workers,
        queue_depth: 16,
        models: None,
    }
}

fn spec_at(rate: u64) -> FleetSpec {
    FleetSpec {
        pools: vec![pool(SocClass::NvSmall, 2), pool(SocClass::NvFull, 1)],
        route: RoutePolicy::ModelAffinity,
        shape: TrafficShape::Diurnal,
        rate_rps: rate,
        duration_ms: 1_000,
        seed: 42,
        slo_us: 12_000,
        ..FleetSpec::default()
    }
}

fn bench_fleet_capacity(c: &mut Criterion) {
    let nets = nets();
    let opt = options();
    let fleet = Fleet::new(&nets, &opt, wfi_codegen(), &spec_at(300)).expect("calibrate");

    // Correctness oracles before any timing: a fixed seed reproduces
    // the report bit-for-bit and K sampled windows of the dispatch
    // plan replay cycle-exactly on both pool classes.
    {
        let spec = FleetSpec {
            duration_ms: 200,
            ..spec_at(400)
        };
        let mut a = fleet.run(&spec).expect("run");
        let mut b = fleet.run(&spec).expect("run again");
        assert!(a.served > 0 && a.replayed_frames > 0);
        assert_eq!(a.replay_divergence, 0, "spot-replay must be cycle-exact");
        a.host_seconds = 0.0;
        b.host_seconds = 0.0;
        assert_eq!(a, b, "fixed seed must reproduce the report");
        assert!(a.per_pool.iter().all(|p| p.routed > 0));
    }

    let mut g = c.benchmark_group("fleet_capacity");
    g.sample_size(10);
    g.bench_function("calibrate_2pool", |b| {
        b.iter(|| {
            Fleet::new(&nets, &opt, wfi_codegen(), &spec_at(300))
                .expect("calibrate")
                .pool_profile(0)
                .service
                .compute
                .clone()
        })
    });
    g.bench_function("plan_knee_point", |b| {
        b.iter(|| fleet.plan(&spec_at(450)).expect("plan").served)
    });
    g.bench_function("plan_saturated", |b| {
        b.iter(|| fleet.plan(&spec_at(900)).expect("plan").served)
    });
    // The autoscaler path: headroom to grow into under a flash crowd
    // (window bookkeeping + scale events on top of the plain plan).
    g.bench_function("plan_autoscaled_flash_crowd", |b| {
        let mut spec = spec_at(900);
        spec.shape = TrafficShape::FlashCrowd;
        spec.pools[0].max_workers = 6;
        b.iter(|| {
            let r = fleet.plan(&spec).expect("plan");
            assert!(r.per_pool[0].workers_high >= r.per_pool[0].workers_start);
            r.served
        })
    });
    g.bench_function("run_spot_replay_200ms_400rps", |b| {
        let spec = FleetSpec {
            duration_ms: 200,
            ..spec_at(400)
        };
        b.iter(|| {
            let r = fleet.run(&spec).expect("run");
            assert_eq!(r.replay_divergence, 0);
            r.served
        })
    });
    g.finish();
}

criterion_group!(fleet_capacity, bench_fleet_capacity);
criterion_main!(fleet_capacity);
