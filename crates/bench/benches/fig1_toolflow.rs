//! Fig. 1 / Fig. 3 — the software generation flow.
//!
//! Reproduces every stage of the paper's toolflow on LeNet-5 and
//! reports what each stage produces:
//!
//! 1. compile the Caffe-like model (NVDLA compiler),
//! 2. execute on the virtual platform with CSB/DBB transaction logging,
//! 3. scrape the log into the configuration file (`write_reg`/`read_reg`),
//! 4. extract the deduplicated weight file from DBB reads,
//! 5. translate the configuration file to RISC-V assembly,
//! 6. assemble to machine code.
//!
//! The criterion group measures the per-stage cost of the offline flow.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::print_table;
use rvnv_compiler::codegen::{generate_assembly, generate_machine_code, CodegenOptions};
use rvnv_compiler::trace::write_config_file;
use rvnv_compiler::vplog::{extract_config, extract_weights};
use rvnv_compiler::{compile, CompileOptions, VirtualPlatform};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_nvdla::HwConfig;

fn run_flow() {
    let net = Model::LeNet5.build(1);
    let opt = CompileOptions::int8();
    let artifacts = compile(&net, &opt).expect("compile");
    let input = Tensor::random(net.input_shape(), 42);
    let input_bytes = artifacts.quantize_input(&input);

    let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
    let run = vp.run(&artifacts, &input_bytes, true).expect("vp run");

    let config = extract_config(&run.log);
    let config_text = write_config_file(&config);
    let weights = extract_weights(&run.log);
    let asm = generate_assembly(&config);
    let image = generate_machine_code(&config, CodegenOptions::default()).expect("assemble");

    assert_eq!(
        config, artifacts.commands,
        "scraped config == compiled config"
    );

    let rows = vec![
        vec!["Caffe model (layers)".into(), net.layer_count().to_string()],
        vec!["HW operations".into(), artifacts.ops.len().to_string()],
        vec!["VP log lines".into(), run.log.entries().len().to_string()],
        vec!["Config file commands".into(), config.len().to_string()],
        vec!["Config file bytes".into(), config_text.len().to_string()],
        vec!["Weight beats (deduped)".into(), weights.len().to_string()],
        vec![
            "Weight file bytes".into(),
            artifacts.weights.total_bytes().to_string(),
        ],
        vec!["Assembly lines".into(), asm.lines().count().to_string()],
        vec!["Machine code bytes".into(), image.len().to_string()],
        vec!["VP cycles".into(), run.cycles.to_string()],
    ];
    print_table(
        "Fig. 1/3: software generation flow on LeNet-5 (stage outputs)",
        &["Stage output", "Value"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    run_flow();

    let net = Model::LeNet5.build(1);
    let opt = CompileOptions::int8();
    let mut group = c.benchmark_group("fig1_toolflow");
    group.sample_size(10);
    group.bench_function("stage1_compile", |b| {
        b.iter(|| compile(&net, &opt).expect("compile"))
    });

    let artifacts = compile(&net, &opt).expect("compile");
    let input_bytes = vec![0u8; artifacts.input_len];
    group.bench_function("stage2_vp_execute", |b| {
        b.iter(|| {
            let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
            vp.set_functional(false);
            vp.run(&artifacts, &input_bytes, true).expect("vp").cycles
        })
    });

    let mut vp = VirtualPlatform::new(HwConfig::nv_small(), 16 << 20);
    let run = vp.run(&artifacts, &input_bytes, true).expect("vp");
    group.bench_function("stage3_scrape_config", |b| {
        b.iter(|| extract_config(std::hint::black_box(&run.log)))
    });
    group.bench_function("stage4_extract_weights", |b| {
        b.iter(|| extract_weights(std::hint::black_box(&run.log)))
    });
    group.bench_function("stage5_codegen_assemble", |b| {
        b.iter(|| {
            generate_machine_code(&artifacts.commands, CodegenOptions::default()).expect("assemble")
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
