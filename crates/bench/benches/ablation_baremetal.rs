//! Ablations behind the paper's headline claims.
//!
//! 1. **Bare-metal vs Linux runtime** (§I, §V): the speedup collapses
//!    from ~50× on tiny models to ~2× on large ones because the Linux
//!    overhead is roughly fixed per inference.
//! 2. **Layer fusion** (our compiler's optimization vs the paper's
//!    per-layer trace replay).
//! 3. **Clock sweep**: Table II at 50/100/200 MHz system clocks.
//! 4. **Storage**: bare-metal firmware vs kernel + rootfs.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::{compile_nv_small, format_time, print_table, table2_soc_config};
use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_soc::baseline::LinuxRuntimeModel;
use rvnv_soc::firmware::{Firmware, StorageFootprint};
use rvnv_soc::soc::{Soc, SocConfig};

fn ablation_baremetal_vs_linux() {
    let baseline = LinuxRuntimeModel::esp_ariane_50mhz();
    let mut rows = Vec::new();
    for model in Model::NV_SMALL {
        let net = model.build(1);
        let artifacts = compile_nv_small(model);
        let mut soc = Soc::new(table2_soc_config());
        let input = Tensor::random(net.input_shape(), 5);
        let r = soc.run_inference(&artifacts, &input).expect("run");
        let bm_ms = r.cycles as f64 * 1000.0 / 100e6;
        let data = artifacts.weights.total_bytes() as u64 + artifacts.input_len as u64;
        let lx_ms = baseline.latency_ms(r.cycles, artifacts.ops.len() as u64, data);
        rows.push(vec![
            model.name().to_string(),
            format!("{bm_ms:.1} ms"),
            format!("{lx_ms:.0} ms"),
            format!("{:.1}x", lx_ms / bm_ms),
        ]);
    }
    print_table(
        "Ablation 1: bare-metal @100MHz vs Linux stack @50MHz",
        &["Model", "Bare-metal", "Linux runtime", "Speedup"],
        &rows,
    );
}

fn ablation_fusion() {
    let mut rows = Vec::new();
    for model in [Model::LeNet5, Model::ResNet18] {
        let net = model.build(1);
        let input = Tensor::random(net.input_shape(), 5);
        let mut cells = vec![model.name().to_string()];
        for fused in [false, true] {
            let mut opt = CompileOptions::int8();
            opt.calib_inputs = 1;
            if !fused {
                opt = opt.unfused();
            }
            let artifacts = compile(&net, &opt).expect("compile");
            let mut soc = Soc::new(table2_soc_config());
            let r = soc.run_inference(&artifacts, &input).expect("run");
            cells.push(format!(
                "{} ({} ops)",
                format_time(r.cycles, 100_000_000),
                artifacts.ops.len()
            ));
        }
        rows.push(cells);
    }
    print_table(
        "Ablation 2: per-layer trace replay (paper flow) vs fused compiler",
        &["Model", "Unfused (trace replay)", "Fused"],
        &rows,
    );
}

fn ablation_clock_sweep() {
    let artifacts = compile_nv_small(Model::LeNet5);
    let net = Model::LeNet5.build(1);
    let input = Tensor::random(net.input_shape(), 5);
    let mut rows = Vec::new();
    for mhz in [50u64, 100, 200] {
        let mut cfg = SocConfig::zcu102_timing_only();
        cfg.soc_hz = mhz * 1_000_000;
        // The DDR4 stays at 100 MHz on the board.
        let mut soc = Soc::new(cfg);
        let r = soc.run_inference(&artifacts, &input).expect("run");
        rows.push(vec![
            format!("{mhz} MHz"),
            r.cycles.to_string(),
            format_time(r.cycles, mhz * 1_000_000),
        ]);
    }
    print_table(
        "Ablation 3: LeNet-5 vs system clock (DDR4 fixed at 100 MHz)",
        &["SoC clock", "Cycles", "Latency"],
        &rows,
    );
}

fn ablation_storage() {
    let mut rows = Vec::new();
    for model in Model::NV_SMALL {
        let artifacts = compile_nv_small(model);
        let fw = Firmware::build(&artifacts).expect("firmware");
        let bm = StorageFootprint::bare_metal(&fw, &artifacts);
        let lx = StorageFootprint::linux(&artifacts);
        rows.push(vec![
            model.name().to_string(),
            format!("{} B", bm.software_bytes),
            format!("{:.1} MB", lx.software_bytes as f64 / 1e6),
            format!("{:.1} MB", bm.weight_bytes as f64 / 1e6),
            format!(
                "{:.0}x",
                lx.software_bytes as f64 / bm.software_bytes as f64
            ),
        ]);
    }
    print_table(
        "Ablation 4: software storage, bare-metal vs Linux stack",
        &[
            "Model",
            "Firmware",
            "Kernel+rootfs",
            "Weights (both)",
            "Software saving",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    ablation_baremetal_vs_linux();
    ablation_fusion();
    ablation_clock_sweep();
    ablation_storage();

    // Criterion: the latency model itself across a parameter sweep.
    let m = LinuxRuntimeModel::esp_ariane_50mhz();
    c.bench_function("ablation/linux_model_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for hw in [100_000u64, 1_000_000, 10_000_000, 100_000_000] {
                for ops in [5u64, 50, 150] {
                    acc = acc.wrapping_add(m.total_cycles(hw, ops, 1 << 20));
                }
            }
            acc
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
