//! Simulator-kernel benches: decoded-block cache + MMIO read lease on
//! the ISS side, blocked vs reference convolution on the engine side.
//!
//! Every group asserts bit-identical architectural results (the
//! determinism fingerprint: output bytes + instructions + cycles)
//! between the fast and slow paths *before* timing starts, so CI's
//! `--test` mode doubles as a correctness gate. The full on/off × cold/
//! warm × poll/wfi matrix lives in the `determinism_fingerprint`
//! example.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::inference_fingerprint;
use rvnv_compiler::{compile, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_nn::Tensor;
use rvnv_nvdla::config::Precision;
use rvnv_nvdla::descriptor::ConvDesc;
use rvnv_nvdla::engines::conv;
use rvnv_soc::firmware::Firmware;
use rvnv_soc::soc::{Soc, SocConfig};

fn bench_iss_kernels(c: &mut Criterion) {
    let net = Model::LeNet5.build(1);
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let artifacts = compile(&net, &opt).expect("compile");
    let input = Tensor::random(net.input_shape(), 7);
    let input_bytes = artifacts.quantize_input(&input);
    let fw = Firmware::build(&artifacts).expect("fw");

    for (name, functional) in [("functional", true), ("timing_only", false)] {
        let base = if functional {
            SocConfig::zcu102_nv_small()
        } else {
            SocConfig::zcu102_timing_only()
        };
        let mut soc_on = Soc::new(base.clone());
        let mut soc_off = Soc::new(SocConfig {
            block_cache: false,
            ..base
        });
        soc_on.load_artifacts(&artifacts).expect("preload");
        soc_off.load_artifacts(&artifacts).expect("preload");

        // Determinism gate before any timing.
        let on = soc_on
            .run_firmware(&artifacts, &input_bytes, &fw)
            .expect("on");
        let off = soc_off
            .run_firmware(&artifacts, &input_bytes, &fw)
            .expect("off");
        assert_eq!(
            inference_fingerprint(&on),
            inference_fingerprint(&off),
            "{name}: block cache + read lease changed an architectural observable"
        );

        let mut g = c.benchmark_group(&format!("sim_kernels_{name}"));
        g.sample_size(10);
        g.bench_function("warm_cache_on", |b| {
            b.iter(|| {
                soc_on
                    .run_firmware(&artifacts, &input_bytes, &fw)
                    .expect("run")
                    .cycles
            })
        });
        g.bench_function("warm_cache_off", |b| {
            b.iter(|| {
                soc_off
                    .run_firmware(&artifacts, &input_bytes, &fw)
                    .expect("run")
                    .cycles
            })
        });
        g.finish();
    }
}

fn bench_conv_kernel(c: &mut Criterion) {
    // LeNet-5 conv2: the model's heaviest convolution.
    let d = ConvDesc {
        src: 0,
        in_w: 12,
        in_h: 12,
        in_c: 6,
        wt_addr: 0,
        wt_bytes: 16 * 6 * 25,
        stride: 1,
        pad: 0,
        out_w: 8,
        out_h: 8,
        out_c: 16,
        kw: 5,
        kh: 5,
        groups: 1,
        in_scale: 0.031,
        wt_scale: 0.27,
        precision: Precision::Int8,
    };
    let feature: Vec<u8> = (0..d.in_c * d.in_h * d.in_w)
        .map(|i| (i.wrapping_mul(31) >> 3) as u8)
        .collect();
    let weights: Vec<u8> = (0..d.wt_bytes)
        .map(|i| (i.wrapping_mul(17) >> 2) as u8)
        .collect();

    // Bit-exactness gate before any timing.
    let fast = conv::compute(&d, &feature, &weights);
    let slow = conv::compute_reference(&d, &feature, &weights);
    assert_eq!(
        fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        slow.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "blocked conv diverged from the reference"
    );

    let mut g = c.benchmark_group("sim_kernels_conv");
    g.bench_function("blocked", |b| {
        b.iter(|| conv::compute(&d, &feature, &weights))
    });
    g.bench_function("reference", |b| {
        b.iter(|| conv::compute_reference(&d, &feature, &weights))
    });
    g.finish();
}

criterion_group!(sim_kernels, bench_iss_kernels, bench_conv_kernel);
criterion_main!(sim_kernels);
