//! Table I — FPGA resource utilization (AMD ZCU102).
//!
//! Regenerates every row of the paper's utilization table from the
//! analytical resource model, then checks the `nv_full` finding (does
//! not fit the ZCU102). The criterion group measures the estimator
//! itself (it is used inside configuration sweeps).

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::print_table;
use rvnv_nvdla::HwConfig;
use rvnv_soc::resources::{self, fits_zcu102, table1, ZCU102};

const PROGMEM: usize = 928 << 10; // 232 BRAM tiles, as in the paper

fn print_table1() {
    let rows = table1(&HwConfig::nv_small(), PROGMEM);
    let header = [
        "Major Components",
        "CLB LUTs",
        "CLB Regs",
        "CARRY8",
        "F7 Muxes",
        "F8 Muxes",
        "CLBs",
        "BRAM Tiles",
        "DSPs",
    ];
    let mut out: Vec<Vec<String>> = Vec::new();
    out.push(vec![
        "(FPGA capacity)".into(),
        ZCU102.lut.to_string(),
        ZCU102.regs.to_string(),
        ZCU102.carry8.to_string(),
        ZCU102.f7_mux.to_string(),
        ZCU102.f8_mux.to_string(),
        ZCU102.clb.to_string(),
        ZCU102.bram.to_string(),
        ZCU102.dsp.to_string(),
    ]);
    for r in &rows {
        out.push(vec![
            r.name.to_string(),
            r.util.lut.to_string(),
            r.util.regs.to_string(),
            r.util.carry8.to_string(),
            r.util.f7_mux.to_string(),
            r.util.f8_mux.to_string(),
            r.util.clb.to_string(),
            r.util.bram.to_string(),
            r.util.dsp.to_string(),
        ]);
    }
    print_table(
        "Table I: FPGA resource utilization (model; paper values in EXPERIMENTS.md)",
        &header,
        &out,
    );

    // The paper's nv_full observation.
    let full = resources::nvdla(&HwConfig::nv_full());
    println!(
        "\nnv_full NVDLA estimate: {} LUTs vs {} available -> fits ZCU102: {}",
        full.lut,
        ZCU102.lut,
        fits_zcu102(&full)
    );
    assert!(!fits_zcu102(&full), "paper: nv_full must not fit");
}

fn bench(c: &mut Criterion) {
    print_table1();
    c.bench_function("table1/estimate_nv_small", |b| {
        b.iter(|| table1(std::hint::black_box(&HwConfig::nv_small()), PROGMEM))
    });
    c.bench_function("table1/estimate_nv_full", |b| {
        b.iter(|| resources::nvdla(std::hint::black_box(&HwConfig::nv_full())))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
