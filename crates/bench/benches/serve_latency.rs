//! Host-cost bench for the serving subsystem.
//!
//! Three costs matter to a serving experiment's wall clock:
//!
//! * `calibrate` — measuring the per-model/per-pair service profile on
//!   a real SoC (`N` warm frames + `N²` staged pairs; paid once per
//!   server).
//! * `plan_below_knee` / `plan_above_knee` — one pure queueing
//!   simulation of a 1-second Poisson trace, below and above the
//!   saturation knee (the above-knee point exercises the full
//!   queue/drop machinery). This is the per-point cost of a rate
//!   sweep, and the reason `examples/load_test.rs` can afford dense
//!   hockey-stick curves.
//! * `serve_replay` — a short full serve: plan plus the cycle-exact
//!   replay of every dispatched frame on a real worker SoC.
//!
//! Before timing, the bench asserts the serving oracles (determinism
//! and zero replay divergence, serial and pipelined), so `cargo bench
//! -- --test` doubles as a correctness check in CI.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_compiler::codegen::{CodegenOptions, WaitMode};
use rvnv_compiler::{ArtifactCache, Artifacts, CompileOptions};
use rvnv_nn::zoo::Model;
use rvnv_obs::Tracer;
use rvnv_soc::batch::{layout_models, Policy};
use rvnv_soc::serve::{simulate, simulate_traced, ArrivalProcess, FaultSpec, ServeSpec, Server};
use rvnv_soc::soc::SocConfig;

fn artifacts() -> Vec<Arc<Artifacts>> {
    let mut opt = CompileOptions::int8();
    opt.calib_inputs = 1;
    let nets = [Model::LeNet5.build(1), Model::ResNet18.build(1)];
    let cache = ArtifactCache::new();
    layout_models(&cache, &nets, &opt).expect("layout")
}

fn wfi_codegen() -> CodegenOptions {
    CodegenOptions {
        wait_mode: WaitMode::Wfi,
        ..CodegenOptions::default()
    }
}

fn spec_at(rate: u64, pipelined: bool) -> ServeSpec {
    ServeSpec {
        process: ArrivalProcess::Poisson,
        rate_rps: rate,
        duration_ms: 1_000,
        seed: 42,
        workers: 1,
        policy: Policy::RoundRobin,
        pipelined,
        queue_depth: 8,
        slo_us: 20_000,
        timeout_us: 0,
        retries: 0,
        faults: None,
    }
}

fn bench_serve_latency(c: &mut Criterion) {
    let config = SocConfig::zcu102_timing_only();
    let artifacts = artifacts();
    let server = Server::new(config.clone(), artifacts.clone(), wfi_codegen()).expect("calibrate");

    // Correctness oracles before any timing: a fixed seed reproduces
    // the report bit-for-bit, and the dispatch plan replays
    // cycle-exactly on real SoCs in both worker modes.
    for pipelined in [false, true] {
        let spec = ServeSpec {
            duration_ms: 100,
            ..spec_at(300, pipelined)
        };
        let mut a = server.serve(&spec).expect("serve");
        let mut b = server.serve(&spec).expect("serve again");
        assert_eq!(a.replay_divergence, 0, "plan must replay cycle-exactly");
        a.host_seconds = 0.0;
        b.host_seconds = 0.0;
        assert_eq!(a, b, "fixed seed must reproduce the report");
        assert!(a.served > 0 && a.total.p99 >= a.total.p50);
    }

    let mut g = c.benchmark_group("serve_latency");
    g.sample_size(10);
    g.bench_function("calibrate", |b| {
        b.iter(|| {
            Server::new(config.clone(), artifacts.clone(), wfi_codegen())
                .expect("calibrate")
                .service_model()
                .compute
                .clone()
        })
    });
    g.bench_function("plan_below_knee", |b| {
        b.iter(|| server.plan(&spec_at(100, false)).expect("plan").served)
    });
    g.bench_function("plan_above_knee", |b| {
        b.iter(|| server.plan(&spec_at(400, false)).expect("plan").served)
    });
    // Faults-off overhead: a quiet chaos spec (all rates zero) must be
    // bit-invisible (pinned by tests/properties.rs) and host-free —
    // this row is asserted ≈ `plan_below_knee` in docs/BASELINES.md.
    g.bench_function("plan_below_knee_quiet_faults", |b| {
        let spec = ServeSpec {
            faults: Some(FaultSpec {
                seed: 42,
                ..FaultSpec::default()
            }),
            ..spec_at(100, false)
        };
        b.iter(|| server.plan(&spec).expect("plan").served)
    });
    // And the cost of an actually-armed storm: a 15% composite rate
    // with timeouts and bounded retries over the same trace.
    g.bench_function("plan_below_knee_chaos_15pct", |b| {
        let spec = ServeSpec {
            timeout_us: 10_000,
            retries: 2,
            faults: Some(FaultSpec {
                seed: 42,
                flip_per_million: 30_000,
                error_per_million: 60_000,
                spike_per_million: 30_000,
                spike_us: 2_000,
                hang_per_million: 15_000,
                crash_per_million: 15_000,
            }),
            ..spec_at(100, false)
        };
        b.iter(|| {
            let r = server.plan(&spec).expect("plan");
            assert!(r.faults.injected() > 0);
            r.served
        })
    });
    // Tracing overhead, both sides of the arm switch. The disarmed row
    // must cost the same as the plain simulation (every emission site
    // is one `Option` branch; asserted ≈ `sim_below_knee` in
    // docs/BASELINES.md), and the armed row prices actually recording
    // spans.
    let sim_spec = spec_at(100, false);
    let sim_trace = server.trace(&sim_spec);
    let sim_names = vec!["lenet5".to_string(), "resnet18".to_string()];
    g.bench_function("sim_below_knee", |b| {
        b.iter(|| {
            simulate(
                &sim_trace,
                server.service_model(),
                &sim_spec,
                &sim_names,
                config.soc_hz,
            )
            .served
        })
    });
    g.bench_function("sim_below_knee_quiet_tracer", |b| {
        let tracer = Tracer::disarmed();
        b.iter(|| {
            simulate_traced(
                &sim_trace,
                server.service_model(),
                &sim_spec,
                &sim_names,
                config.soc_hz,
                &tracer,
            )
            .served
        })
    });
    g.bench_function("sim_below_knee_armed_tracer", |b| {
        b.iter(|| {
            let tracer = Tracer::armed();
            let r = simulate_traced(
                &sim_trace,
                server.service_model(),
                &sim_spec,
                &sim_names,
                config.soc_hz,
                &tracer,
            );
            assert!(!tracer.snapshot().spans.is_empty());
            r.served
        })
    });
    g.bench_function("serve_replay_100ms_300rps", |b| {
        let spec = ServeSpec {
            duration_ms: 100,
            ..spec_at(300, true)
        };
        b.iter(|| {
            let r = server.serve(&spec).expect("serve");
            assert_eq!(r.replay_divergence, 0);
            r.served
        })
    });
    g.finish();
}

criterion_group!(serve_latency, bench_serve_latency);
criterion_main!(serve_latency);
