//! Fig. 2 — SoC interconnect characterization.
//!
//! The architecture figure has no numbers in the paper; this bench
//! characterizes the latency of every hop it draws: program-memory
//! fetch, AHB transfer, the AHB→APB→CSB register path, the
//! AHB→AXI→arbiter→DRAM data path, the 64→32-bit width conversion, and
//! arbiter contention between the core and the NVDLA DBB.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::print_table;
use rvnv_bus::ahb::AhbPort;
use rvnv_bus::arbiter::Arbiter;
use rvnv_bus::axi::AxiConfig;
use rvnv_bus::bridge::{AhbToApb, AhbToAxi};
use rvnv_bus::dram::Dram;
use rvnv_bus::sram::Sram;
use rvnv_bus::width::WidthConverter;
use rvnv_bus::{AccessSize, MasterId, Request, Target};

fn latency_of(target: &mut dyn Target, req: &Request) -> u64 {
    target.access(req, 0).expect("access").done_at
}

fn characterize() {
    let mut rows = Vec::new();

    let mut sram = Sram::new(4096);
    rows.push(vec![
        "Program memory (BRAM) read".to_string(),
        latency_of(&mut sram, &Request::read32(0)).to_string(),
    ]);

    let mut ahb = AhbPort::new(Sram::new(4096));
    rows.push(vec![
        "AHB-Lite NONSEQ transfer".to_string(),
        latency_of(&mut ahb, &Request::read32(0)).to_string(),
    ]);

    let mut csb_path = AhbToApb::new(Sram::new(4096));
    rows.push(vec![
        "CSB register write (AHB->APB->CSB)".to_string(),
        latency_of(&mut csb_path, &Request::write32(0, 1)).to_string(),
    ]);

    let mut dram_path = AhbToAxi::new(Dram::new(64 << 10, Default::default()), AxiConfig::axi32());
    rows.push(vec![
        "DRAM word read (AHB->AXI->MIG, row miss)".to_string(),
        latency_of(&mut dram_path, &Request::read32(0)).to_string(),
    ]);
    rows.push(vec!["DRAM word read (row hit)".to_string(), {
        let t0 = latency_of(&mut dram_path, &Request::read32(4));
        let r = dram_path.access(&Request::read32(8), t0).expect("read");
        (r.done_at - t0).to_string()
    }]);

    let mut wc = WidthConverter::dbb64_to_mem32(Sram::new(4096));
    rows.push(vec![
        "DBB 64-bit beat through width converter".to_string(),
        latency_of(
            &mut wc,
            &Request::read(0, AccessSize::Double).with_master(MasterId::NvdlaDbb),
        )
        .to_string(),
    ]);

    // Arbiter contention: CPU poll colliding with a DBB burst.
    let mut arb = Arbiter::new(Dram::new(64 << 10, Default::default()));
    let mut buf = vec![0u8; 4096];
    let dma_done = arb.read_block(0, &mut buf, 0).expect("dma");
    let cpu_done = arb.access(&Request::read32(0), 1).expect("cpu").done_at;
    rows.push(vec![
        "DBB 4 KiB burst (cycles)".to_string(),
        dma_done.to_string(),
    ]);
    rows.push(vec![
        "CPU read arriving during that burst (wait)".to_string(),
        arb.port_stats(MasterId::Cpu).wait_cycles.to_string(),
    ]);
    let _ = cpu_done;

    print_table(
        "Fig. 2: per-hop latencies of the SoC interconnect (cycles)",
        &["Path", "Latency"],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    characterize();
    let mut group = c.benchmark_group("fig2");
    group.bench_function("csb_register_write_path", |b| {
        let mut path = AhbToApb::new(Sram::new(4096));
        let mut t = 0;
        b.iter(|| {
            t = path
                .access(&Request::write32(0x8, 1), t)
                .expect("write")
                .done_at;
            t
        })
    });
    group.bench_function("dram_word_read_path", |b| {
        let mut path = AhbToAxi::new(Dram::new(64 << 10, Default::default()), AxiConfig::axi32());
        let mut t = 0;
        b.iter(|| {
            t = path.access(&Request::read32(64), t).expect("read").done_at;
            t
        })
    });
    group.bench_function("dbb_burst_4k", |b| {
        let mut arb = Arbiter::new(Dram::new(1 << 20, Default::default()));
        let mut buf = vec![0u8; 4096];
        let mut t = 0;
        b.iter(|| {
            t = arb.read_block(0, &mut buf, t).expect("burst");
            t
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
