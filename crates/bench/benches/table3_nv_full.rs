//! Table III — `nv_full` evaluation (simulation results).
//!
//! Regenerates the paper's rows: cycle counts and processing times at
//! 100 MHz for all six models in FP16 on the virtual platform. Runs are
//! timing-only (the functional FP16 path is verified by the test
//! suite); the criterion group measures the LeNet-5 VP replay.

use criterion::{criterion_group, criterion_main, Criterion};
use rvnv_bench::{
    compile_nv_full, format_time, input_string, model_size_string, nv_full_vp_timing, print_table,
};
use rvnv_compiler::VirtualPlatform;
use rvnv_nn::zoo::Model;
use rvnv_nvdla::HwConfig;

fn paper_cycles(model: Model) -> u64 {
    match model {
        Model::LeNet5 => 143_188,
        Model::ResNet18 => 324_387,
        Model::ResNet50 => 26_565_315,
        Model::MobileNet => 22_525_704,
        Model::GoogLeNet => 40_889_646,
        Model::AlexNet => 35_535_582,
    }
}

fn run_model(model: Model) -> u64 {
    let artifacts = compile_nv_full(model);
    let mut vp = VirtualPlatform::with_timing(HwConfig::nv_full(), 512 << 20, nv_full_vp_timing());
    vp.set_functional(false);
    let input = vec![0u8; artifacts.input_len];
    vp.run(&artifacts, &input, false).expect("vp run").cycles
}

fn run_table3() {
    let hz = 100_000_000u64;
    let mut rows = Vec::new();
    for model in Model::ALL {
        let cycles = run_model(model);
        let paper = paper_cycles(model);
        rows.push(vec![
            model.name().to_string(),
            input_string(model),
            model_size_string(model),
            format!("{cycles} ({paper})"),
            format!("{} ({})", format_time(cycles, hz), format_time(paper, hz)),
        ]);
    }
    print_table(
        "Table III: nv_full simulation, FP16 — measured (paper)",
        &[
            "Model",
            "Input size",
            "Model size",
            "Clock cycles",
            "Proc. time @100MHz",
        ],
        &rows,
    );
}

fn bench(c: &mut Criterion) {
    run_table3();
    let artifacts = compile_nv_full(Model::LeNet5);
    let input = vec![0u8; artifacts.input_len];
    let mut group = c.benchmark_group("table3");
    group.sample_size(10);
    group.bench_function("lenet5_nv_full_vp_replay", |b| {
        b.iter(|| {
            let mut vp =
                VirtualPlatform::with_timing(HwConfig::nv_full(), 64 << 20, nv_full_vp_timing());
            vp.set_functional(false);
            vp.run(&artifacts, &input, false).expect("vp run").cycles
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
