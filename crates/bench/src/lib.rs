//! Shared helpers for the table/figure reproduction benches.

use rvnv_bus::dram::DramTiming;
use rvnv_compiler::{compile, Artifacts, CompileOptions};
use rvnv_nn::hash::Fnv;
use rvnv_nn::stats::{ModelStats, Precision as NnPrecision};
use rvnv_nn::zoo::Model;
use rvnv_soc::soc::{InferenceResult, SocConfig};

/// Determinism fingerprint of one simulated inference: a hash over
/// every observable the fast simulator kernels must not change — the
/// raw output bytes left in DRAM, the retired instruction count, and
/// the modeled cycle count. Two runs with the same fingerprint took
/// the same architectural path; the fast-kernel acceptance gate
/// asserts fingerprints are equal with the kernels on and off *before*
/// any timing is measured.
#[must_use]
pub fn inference_fingerprint(r: &InferenceResult) -> u64 {
    let mut h = Fnv::new();
    h.bytes(&r.raw_output);
    h.mix(r.instructions);
    h.mix(r.cycles);
    h.finish()
}

/// Pretty-print a table with a title and aligned columns.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n=== {title} ===");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let fmt_row = |cells: &[String]| {
        let cols: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:<w$}"))
            .collect();
        println!("| {} |", cols.join(" | "));
    };
    fmt_row(&header.iter().map(|s| (*s).to_string()).collect::<Vec<_>>());
    println!(
        "|{}|",
        widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("|")
    );
    for row in rows {
        fmt_row(row);
    }
}

/// Format a cycle count at `hz` the way the paper prints times
/// (ms below a second, seconds above).
pub fn format_time(cycles: u64, hz: u64) -> String {
    let ms = cycles as f64 * 1000.0 / hz as f64;
    if ms >= 1000.0 {
        format!("{:.1} s", ms / 1000.0)
    } else if ms >= 10.0 {
        format!("{ms:.0} ms")
    } else {
        format!("{ms:.1} ms")
    }
}

/// The Table II/III "Model Size" column (fp32 Caffe file).
pub fn model_size_string(model: Model) -> String {
    ModelStats::of(&model.build(1)).model_size_string(NnPrecision::Fp32)
}

/// Input-size column, e.g. `3x224x224`.
pub fn input_string(model: Model) -> String {
    model.build(1).input_shape().to_string()
}

/// Compile a model for the paper's `nv_small` trace-replay flow
/// (INT8, unfused, single calibration input to keep benches fast).
pub fn compile_nv_small(model: Model) -> Artifacts {
    let mut opt = CompileOptions::int8().unfused();
    opt.calib_inputs = 1;
    compile(&model.build(1), &opt).expect("nv_small models compile")
}

/// Compile a model for `nv_full` FP16 simulation.
pub fn compile_nv_full(model: Model) -> Artifacts {
    compile(&model.build(1), &CompileOptions::fp16()).expect("nv_full models compile")
}

/// The SoC configuration used for Table II (timing-only for speed; the
/// functional path is exercised by the test suite).
pub fn table2_soc_config() -> SocConfig {
    SocConfig::zcu102_timing_only()
}

/// Memory timing used for `nv_full` VP simulation.
///
/// The official VP's SystemC memory is a behavioral model that delivers
/// on the order of 4 bytes/cycle regardless of the configured DBB width
/// — visible in the paper's Table III, where AlexNet's 122 MB of FP16
/// weights take 35.5 M cycles (~3.4 B/cycle). We reproduce that
/// behaviour with a 32-bit-per-beat memory and moderate latencies.
pub fn nv_full_vp_timing() -> DramTiming {
    DramTiming {
        cas: 6,
        rcd: 6,
        rp: 6,
        controller: 4,
        row_bytes: 2048,
        bytes_per_beat: 4,
    }
}
