//! Error type shared by all bus components.

use std::error::Error;
use std::fmt;

/// Errors produced by bus transactions.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum BusError {
    /// No slave decodes the address.
    DecodeError {
        /// The offending address.
        addr: u32,
    },
    /// Access crosses the end of the device or exceeds its size.
    OutOfRange {
        /// The offending address.
        addr: u32,
        /// Number of bytes requested.
        len: usize,
        /// Size of the device in bytes.
        size: usize,
    },
    /// Address not aligned to the access size.
    Misaligned {
        /// The offending address.
        addr: u32,
        /// Required alignment in bytes.
        align: u32,
    },
    /// The slave exists but rejected the access (e.g. write to ROM,
    /// reserved register, unsupported size).
    SlaveError {
        /// The offending address.
        addr: u32,
        /// Human-readable reason.
        reason: &'static str,
    },
    /// A resident-image registration overlaps an image that is already
    /// resident (see [`crate::dram::Dram::add_resident`]). Lay the
    /// images out at disjoint DRAM bases, or evict the old image first.
    ResidentOverlap {
        /// Id of the already-resident image being overlapped.
        image: u64,
    },
    /// A deliberately injected fault (see [`crate::fault::FaultInjector`]).
    /// The device underneath is healthy; a chaos plan decided this
    /// transaction fails. Distinguishable from every organic error so
    /// recovery layers can tell "the test harness shot me" from "the
    /// model is broken".
    Injected {
        /// The address of the faulted transaction.
        addr: u32,
        /// Monotone per-injector index of the faulted access (useful to
        /// correlate with a [`crate::fault::FaultPlan`] schedule).
        access: u64,
    },
}

impl fmt::Display for BusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BusError::DecodeError { addr } => {
                write!(f, "no slave decodes address {addr:#010x}")
            }
            BusError::OutOfRange { addr, len, size } => write!(
                f,
                "access of {len} bytes at {addr:#010x} exceeds device size {size:#x}"
            ),
            BusError::Misaligned { addr, align } => {
                write!(f, "address {addr:#010x} not aligned to {align} bytes")
            }
            BusError::SlaveError { addr, reason } => {
                write!(f, "slave error at {addr:#010x}: {reason}")
            }
            BusError::ResidentOverlap { image } => {
                write!(f, "extents overlap resident weight image {image}")
            }
            BusError::Injected { addr, access } => {
                write!(f, "injected bus fault at {addr:#010x} (access #{access})")
            }
        }
    }
}

impl Error for BusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BusError::DecodeError { addr: 0xdead_0000 };
        assert!(e.to_string().contains("0xdead0000"));
        let e = BusError::OutOfRange {
            addr: 0x10,
            len: 8,
            size: 4,
        };
        assert!(e.to_string().contains("8 bytes"));
        let e = BusError::Misaligned { addr: 3, align: 4 };
        assert!(e.to_string().contains("aligned"));
        let e = BusError::SlaveError {
            addr: 0,
            reason: "write to rom",
        };
        assert!(e.to_string().contains("write to rom"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<T: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<BusError>();
    }
}
