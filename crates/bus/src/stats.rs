//! Generic transaction monitor.
//!
//! Wrap any [`Target`] in a [`Monitor`] to collect transaction counts,
//! byte totals and latency aggregates — the instrumentation used by the
//! Fig. 2 interconnect microbenchmarks.

use crate::{BusError, Cycle, Request, Response, Target};

/// Aggregated transaction statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MonitorStats {
    /// Read transactions observed.
    pub reads: u64,
    /// Write transactions observed.
    pub writes: u64,
    /// Bytes read (including block reads).
    pub bytes_read: u64,
    /// Bytes written (including block writes).
    pub bytes_written: u64,
    /// Sum of per-transaction latencies (cycles).
    pub total_latency: u64,
    /// Largest single-transaction latency (cycles).
    pub max_latency: u64,
    /// Errors propagated.
    pub errors: u64,
}

impl MonitorStats {
    /// Mean latency per transaction, rounded down (0 when idle).
    #[must_use]
    pub fn mean_latency(&self) -> u64 {
        let n = self.reads + self.writes;
        self.total_latency.checked_div(n).unwrap_or(0)
    }
}

/// A pass-through wrapper that observes all traffic to a target.
#[derive(Debug)]
pub struct Monitor<T> {
    inner: T,
    label: String,
    stats: MonitorStats,
}

impl<T: Target> Monitor<T> {
    /// Wrap `inner`, labelling the monitor for reports.
    pub fn new(label: impl Into<String>, inner: T) -> Self {
        Monitor {
            inner,
            label: label.into(),
            stats: MonitorStats::default(),
        }
    }

    /// The monitor's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Statistics collected so far.
    pub fn stats(&self) -> MonitorStats {
        self.stats
    }

    /// Clear collected statistics.
    pub fn reset(&mut self) {
        self.stats = MonitorStats::default();
    }

    /// Access the wrapped target (backdoor).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Unwrap, returning the inner target.
    pub fn into_inner(self) -> T {
        self.inner
    }

    fn observe(&mut self, now: Cycle, done: Cycle) {
        let lat = done - now;
        self.stats.total_latency += lat;
        self.stats.max_latency = self.stats.max_latency.max(lat);
    }
}

impl<T: Target> Target for Monitor<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        match self.inner.access(req, now) {
            Ok(resp) => {
                if req.is_write() {
                    self.stats.writes += 1;
                    self.stats.bytes_written += u64::from(req.size.bytes());
                } else {
                    self.stats.reads += 1;
                    self.stats.bytes_read += u64::from(req.size.bytes());
                }
                self.observe(now, resp.done_at);
                Ok(resp)
            }
            Err(e) => {
                self.stats.errors += 1;
                Err(e)
            }
        }
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        match self.inner.read_block(addr, buf, now) {
            Ok(done) => {
                self.stats.reads += 1;
                self.stats.bytes_read += buf.len() as u64;
                self.observe(now, done);
                Ok(done)
            }
            Err(e) => {
                self.stats.errors += 1;
                Err(e)
            }
        }
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        match self.inner.write_block(addr, buf, now) {
            Ok(done) => {
                self.stats.writes += 1;
                self.stats.bytes_written += buf.len() as u64;
                self.observe(now, done);
                Ok(done)
            }
            Err(e) => {
                self.stats.errors += 1;
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn counts_reads_writes_and_bytes() {
        let mut m = Monitor::new("dram", Sram::new(256));
        m.access(&Request::write32(0, 1), 0).unwrap();
        m.access(&Request::read32(0), 0).unwrap();
        m.write_block(0, &[0u8; 16], 0).unwrap();
        let s = m.stats();
        assert_eq!(s.writes, 2);
        assert_eq!(s.reads, 1);
        assert_eq!(s.bytes_written, 20);
        assert_eq!(s.bytes_read, 4);
        assert_eq!(s.errors, 0);
        assert_eq!(m.label(), "dram");
    }

    #[test]
    fn latency_aggregates() {
        let mut m = Monitor::new("x", Sram::new(64));
        m.access(&Request::read32(0), 0).unwrap();
        m.access(&Request::read32(4), 100).unwrap();
        let s = m.stats();
        assert_eq!(s.total_latency, 2);
        assert_eq!(s.max_latency, 1);
        assert_eq!(s.mean_latency(), 1);
    }

    #[test]
    fn errors_counted_and_propagated() {
        let mut m = Monitor::new("x", Sram::new(4));
        assert!(m.access(&Request::read32(64), 0).is_err());
        assert_eq!(m.stats().errors, 1);
    }

    #[test]
    fn reset_clears() {
        let mut m = Monitor::new("x", Sram::new(4));
        m.access(&Request::read32(0), 0).unwrap();
        m.reset();
        assert_eq!(m.stats(), MonitorStats::default());
    }

    #[test]
    fn mean_latency_idle_is_zero() {
        let m = Monitor::new("x", Sram::new(4));
        assert_eq!(m.stats().mean_latency(), 0);
    }
}
