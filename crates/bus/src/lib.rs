//! Bus-fabric models for the bare-metal RISC-V + NVDLA SoC.
//!
//! This crate models, at transaction level with cycle-approximate timing,
//! every interconnect component of the SoC in Fig. 2 of the paper:
//!
//! * [`ahb`] — the AHB-Lite protocol used by the µRISC-V core,
//! * [`apb`] — the APB protocol in front of NVDLA's CSB adapter,
//! * [`axi`] — AXI used by the data memory and the NVDLA data backbone (DBB),
//! * [`bridge`] — the AHB→APB and AHB→AXI bridges,
//! * [`width`] — the 64-bit→32-bit AXI data-width converter,
//! * [`arbiter`] — the DRAM arbiter between the core and NVDLA's DBB,
//! * [`decoder`] — the system-bus address decoder (NVDLA at `0x0..0xF_FFFF`,
//!   DRAM at `0x10_0000..0x200F_FFFF`),
//! * [`sram`] / [`dram`] — program memory and the DDR4 data memory,
//! * [`smartconnect`] — the AXI SmartConnect mux between the Zynq PS and the SoC,
//! * [`cdc`] — the clock-domain-crossing model for the SoC↔DDR4 boundary,
//! * [`fault`] — a seeded fault-injection shim insertable on any fabric edge.
//!
//! # Timing model
//!
//! All transactions are expressed through the [`Target`] trait. A master
//! passes its current local cycle count (`now`) and receives a
//! [`Response`] whose `done_at` field says when the transaction completes
//! in the master's clock domain. Shared resources (DRAM behind the
//! [`arbiter::Arbiter`]) serialize requests with a busy-until timeline, so
//! contention between the core and NVDLA emerges naturally.
//!
//! # Example
//!
//! ```
//! use rvnv_bus::{Request, Target, sram::Sram};
//!
//! # fn main() -> Result<(), rvnv_bus::BusError> {
//! let mut mem = Sram::new(0x1000);
//! let done = mem.access(&Request::write32(0x10, 0xDEAD_BEEF), 0)?.done_at;
//! let resp = mem.access(&Request::read32(0x10), done)?;
//! assert_eq!(resp.data as u32, 0xDEAD_BEEF);
//! # Ok(())
//! # }
//! ```

pub mod access;
pub mod ahb;
pub mod apb;
pub mod arbiter;
pub mod axi;
pub mod bridge;
pub mod cdc;
pub mod decoder;
pub mod dram;
pub mod error;
pub mod fault;
pub mod smartconnect;
pub mod sram;
pub mod stats;
pub mod width;

pub use access::{AccessKind, AccessSize, MasterId, Request, Response};
pub use error::BusError;
pub use fault::{FaultInjector, FaultKind, FaultPlan, FaultStats};

/// A cycle count in some clock domain.
pub type Cycle = u64;

/// A memory-mapped transaction target (slave device).
///
/// `now` is the master's current cycle; the returned [`Response::done_at`]
/// is when the transaction completes (always `>= now`). Implementations
/// must be deterministic: the same request sequence yields the same timing.
pub trait Target {
    /// Perform a single (≤ 8 byte) transaction.
    ///
    /// # Errors
    ///
    /// Returns [`BusError`] when the address decodes to nothing, the access
    /// is misaligned, or the device rejects the access.
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError>;

    /// Offer a *read lease* on `addr` to a polling master.
    ///
    /// Called by a master immediately after a successful read of `addr`
    /// whose request arrived here at cycle `now`. Returning
    /// `Some(until)` promises that an **identical repeat read** arriving
    /// at any cycle `t` with `now <= t < until`:
    ///
    /// * returns the same data,
    /// * completes with the same latency (`done_at - t` is constant),
    /// * and has no effect on any *observable* device or timing state.
    ///
    /// The master may then elide such repeats entirely and replay the
    /// recorded data and latency — this is what lets a firmware MMIO
    /// poll loop run at host speed without touching modeled cycles.
    /// Devices whose reads have side effects, or whose value/timing
    /// depends on anything other than "which pending completions have
    /// passed", must return `None` (the default). Fabric layers that
    /// add a fixed pipeline delay forward the query with `now` shifted
    /// by that delay and shift the bound back, so the promise stays
    /// expressed in the caller's clock.
    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        let _ = (addr, now);
        None
    }

    /// Read `buf.len()` bytes starting at `addr` as a burst.
    ///
    /// The default implementation issues one 32-bit beat per word; devices
    /// with real burst support (DRAM) override this with amortized timing.
    ///
    /// # Errors
    ///
    /// Propagates the first failing beat.
    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let mut t = now;
        for (i, chunk) in buf.chunks_mut(4).enumerate() {
            let a = addr.wrapping_add((i * 4) as u32);
            let r = self.access(&Request::read(a, AccessSize::Word), t)?;
            let word = (r.data as u32).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
            t = r.done_at;
        }
        Ok(t)
    }

    /// Write `buf` starting at `addr` as a burst. See [`Target::read_block`].
    ///
    /// # Errors
    ///
    /// Propagates the first failing beat.
    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let mut t = now;
        for (i, chunk) in buf.chunks(4).enumerate() {
            let a = addr.wrapping_add((i * 4) as u32);
            let mut word = [0u8; 4];
            word[..chunk.len()].copy_from_slice(chunk);
            let r = self.access(
                &Request::write(a, u64::from(u32::from_le_bytes(word)), AccessSize::Word),
                t,
            )?;
            t = r.done_at;
        }
        Ok(t)
    }
}

/// Devices that can return to their power-on state **in place**, without
/// reallocating backing storage.
///
/// Fabric wrappers ([`arbiter::Arbiter`], [`cdc::ClockCrossing`],
/// [`smartconnect::SmartConnect`], [`width::WidthConverter`], [`Shared`])
/// reset their own state and then propagate downstream, so resetting the
/// top of a fabric chain resets the whole path. This is what lets a SoC
/// be reused across inferences at host speed: a reset costs a handful of
/// field stores plus zeroing whatever memory extents the previous run
/// actually wrote, instead of reallocating (and re-faulting) hundreds of
/// megabytes of modeled DRAM.
///
/// Implementations must leave the device **bit-identical** (contents,
/// timing state and statistics) to a freshly constructed one, so that
/// reset-and-rerun yields the same cycle counts as build-and-run.
/// There are two deliberate exceptions: [`dram::Dram`]'s
/// resident-extent mechanism, which preserves registered preload
/// images (one or many) by contract — see [`dram::Dram::add_resident`]
/// and [`dram::Dram::mark_resident`] — and
/// [`fault::FaultInjector`]'s armed plan/counter/statistics, which
/// describe a fleet lifetime spanning per-frame resets.
pub trait Reset {
    /// Restore power-on state (contents, timing and statistics).
    fn reset(&mut self);
}

impl<T: Reset + ?Sized> Reset for &mut T {
    fn reset(&mut self) {
        (**self).reset();
    }
}

impl<T: Reset + ?Sized> Reset for Box<T> {
    fn reset(&mut self) {
        (**self).reset();
    }
}

impl<T: Target + ?Sized> Target for &mut T {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        (**self).access(req, now)
    }
    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        (**self).read_lease(addr, now)
    }
    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        (**self).read_block(addr, buf, now)
    }
    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        (**self).write_block(addr, buf, now)
    }
}

impl<T: Target + ?Sized> Target for Box<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        (**self).access(req, now)
    }
    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        (**self).read_lease(addr, now)
    }
    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        (**self).read_block(addr, buf, now)
    }
    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        (**self).write_block(addr, buf, now)
    }
}

/// A shared, thread-safe handle to a [`Target`].
///
/// The SoC wires several masters (the µRISC-V AHB port, the NVDLA DBB) to
/// the same slaves; `Shared` provides cheaply clonable ownership.
#[derive(Debug)]
pub struct Shared<T: ?Sized>(std::sync::Arc<parking_lot::Mutex<T>>);

impl<T> Shared<T> {
    /// Wrap a target for shared ownership.
    pub fn new(inner: T) -> Self {
        Shared(std::sync::Arc::new(parking_lot::Mutex::new(inner)))
    }

    /// Lock and access the inner device.
    pub fn lock(&self) -> parking_lot::MutexGuard<'_, T> {
        self.0.lock()
    }
}

impl<T: ?Sized> Clone for Shared<T> {
    fn clone(&self) -> Self {
        Shared(self.0.clone())
    }
}

impl<T: Reset + ?Sized> Reset for Shared<T> {
    fn reset(&mut self) {
        self.0.lock().reset();
    }
}

impl<T: Target + ?Sized> Target for Shared<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        self.0.lock().access(req, now)
    }
    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        self.0.lock().read_lease(addr, now)
    }
    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        self.0.lock().read_block(addr, buf, now)
    }
    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        self.0.lock().write_block(addr, buf, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram::Sram;

    #[test]
    fn shared_is_send_and_sync() {
        fn assert_send<T: Send>() {}
        fn assert_sync<T: Sync>() {}
        assert_send::<Shared<Sram>>();
        assert_sync::<Shared<Sram>>();
    }

    #[test]
    fn default_block_ops_round_trip() {
        let mut mem = Sram::new(256);
        let data: Vec<u8> = (0..64).collect();
        let t = mem.write_block(0x20, &data, 0).unwrap();
        assert!(t >= 16, "16 word beats must cost at least 16 cycles");
        let mut out = vec![0u8; 64];
        mem.read_block(0x20, &mut out, t).unwrap();
        assert_eq!(out, data);
    }

    #[test]
    fn default_block_ops_handle_tail() {
        let mut mem = Sram::new(64);
        let data = [1u8, 2, 3, 4, 5, 6, 7];
        mem.write_block(0, &data, 0).unwrap();
        let mut out = [0u8; 7];
        mem.read_block(0, &mut out, 0).unwrap();
        assert_eq!(out, data);
    }
}
