//! Clock-domain-crossing (CDC) model.
//!
//! In the full test setup (Fig. 4) an AXI Interconnect "reconciles
//! frequency mismatches" between the SoC (300 MHz) and the MIG DDR4
//! (100 MHz). This wrapper rescales master-domain cycles to the slave
//! domain, adds a synchronizer latency on each crossing, and rescales the
//! completion time back.

use crate::{BusError, Cycle, Request, Reset, Response, Target};

/// A frequency-translating bridge between two clock domains.
#[derive(Debug)]
pub struct ClockCrossing<T> {
    downstream: T,
    master_hz: u64,
    slave_hz: u64,
    sync_cycles: Cycle,
    crossings: u64,
}

impl<T: Target> ClockCrossing<T> {
    /// Create a crossing from a `master_hz` domain into a `slave_hz`
    /// domain with `sync_cycles` synchronizer stages (in slave cycles)
    /// per direction.
    ///
    /// # Panics
    ///
    /// Panics if either frequency is zero.
    pub fn new(downstream: T, master_hz: u64, slave_hz: u64, sync_cycles: Cycle) -> Self {
        assert!(master_hz > 0 && slave_hz > 0, "frequencies must be nonzero");
        ClockCrossing {
            downstream,
            master_hz,
            slave_hz,
            sync_cycles,
            crossings: 0,
        }
    }

    /// The paper's Fig. 4 configuration: 300 MHz SoC → 100 MHz DDR4,
    /// two synchronizer flops.
    pub fn soc300_to_ddr100(downstream: T) -> Self {
        Self::new(downstream, 300_000_000, 100_000_000, 2)
    }

    /// Convert a master-domain time to the slave domain (floor).
    #[must_use]
    pub fn to_slave(&self, master_cycle: Cycle) -> Cycle {
        ((u128::from(master_cycle) * u128::from(self.slave_hz)) / u128::from(self.master_hz))
            as Cycle
    }

    /// Convert a slave-domain time to the master domain (ceiling).
    #[must_use]
    pub fn to_master(&self, slave_cycle: Cycle) -> Cycle {
        ((u128::from(slave_cycle) * u128::from(self.master_hz)).div_ceil(u128::from(self.slave_hz)))
            as Cycle
    }

    /// Number of transactions that crossed domains.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Synchronizer stages per crossing direction, in slave cycles.
    #[must_use]
    pub fn sync_cycles(&self) -> Cycle {
        self.sync_cycles
    }

    /// Access the wrapped downstream target directly (backdoor).
    pub fn downstream_mut(&mut self) -> &mut T {
        &mut self.downstream
    }

    fn outbound(&mut self, now: Cycle) -> Cycle {
        self.crossings += 1;
        self.to_slave(now) + self.sync_cycles
    }

    fn inbound(&self, done_slave: Cycle) -> Cycle {
        self.to_master(done_slave + self.sync_cycles)
    }
}

impl<T: Reset> Reset for ClockCrossing<T> {
    /// Reset the crossing counter, then the slave-domain target. The
    /// frequency configuration is construction state and survives.
    fn reset(&mut self) {
        self.crossings = 0;
        self.downstream.reset();
    }
}

impl<T: Target> Target for ClockCrossing<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        let t = self.outbound(now);
        let resp = self.downstream.access(req, t)?;
        Ok(Response {
            data: resp.data,
            done_at: self.inbound(resp.done_at).max(now + 1),
        })
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let t = self.outbound(now);
        let done = self.downstream.read_block(addr, buf, t)?;
        Ok(self.inbound(done).max(now + 1))
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let t = self.outbound(now);
        let done = self.downstream.write_block(addr, buf, t)?;
        Ok(self.inbound(done).max(now + 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn slow_slave_cycles_cost_more_master_cycles() {
        // 300 MHz master, 100 MHz slave: one slave cycle = 3 master cycles.
        let mut c = ClockCrossing::soc300_to_ddr100(Sram::new(64));
        let r = c.access(&Request::read32(0), 0).unwrap();
        // Outbound sync (2 slave cyc) + SRAM (1) + inbound sync (2) =
        // 5 slave cycles = 15 master cycles.
        assert_eq!(r.done_at, 15);
    }

    #[test]
    fn conversions_round_trip_monotonically() {
        let c = ClockCrossing::new(Sram::new(4), 300, 100, 0);
        for t in [0u64, 1, 2, 3, 10, 99, 100, 12345] {
            let back = c.to_master(c.to_slave(t));
            assert!(back <= t + 3, "round trip close: {t} -> {back}");
            assert!(c.to_slave(t) <= t);
        }
    }

    #[test]
    fn equal_frequencies_add_only_sync() {
        let mut c = ClockCrossing::new(Sram::new(64), 100, 100, 1);
        let r = c.access(&Request::read32(0), 10).unwrap();
        assert_eq!(r.done_at, 13); // 1 out + 1 mem + 1 in
    }

    #[test]
    fn completion_never_before_issue() {
        let mut c = ClockCrossing::new(Sram::new(64), 100, 1_000_000, 0);
        let r = c.access(&Request::read32(0), 5).unwrap();
        assert!(r.done_at > 5);
    }

    #[test]
    fn data_passes_unchanged() {
        let mut c = ClockCrossing::soc300_to_ddr100(Sram::new(64));
        c.access(&Request::write32(0, 0xFEED_BEEF), 0).unwrap();
        assert_eq!(
            c.access(&Request::read32(0), 50).unwrap().data32(),
            0xFEED_BEEF
        );
        assert_eq!(c.crossings(), 2);
    }
}
