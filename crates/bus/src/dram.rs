//! DDR4 DRAM model with open-row policy and burst-amortized timing.
//!
//! Models the 512 MB MIG-controlled DDR4 of the ZCU102 setup (Fig. 4).
//! Timing follows a simple open-page model: an access that hits the open
//! row pays only CAS latency; a miss pays precharge + activate + CAS.
//! Bursts stream one data beat per cycle once the row is open, which is
//! what makes large weight DMAs cheap per byte while keeping scattered
//! CPU accesses expensive — the behaviour the paper's Table II depends on.

use crate::{AccessKind, BusError, Cycle, Request, Reset, Response, Target};

/// A sorted set of disjoint half-open byte ranges, coalescing
/// overlapping or touching neighbours on insert.
///
/// The DRAM model uses it to track *written extents*: a 512 MB device
/// can then be power-on reset by zeroing only the few hundred kilobytes
/// a run actually touched, instead of reallocating the whole backing
/// vector.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RangeSet {
    /// Sorted, pairwise-disjoint, non-touching `[start, end)` ranges.
    ranges: Vec<(usize, usize)>,
}

impl RangeSet {
    /// The empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert `[start, end)`, merging with any overlapping or touching
    /// ranges. Empty ranges are ignored.
    pub fn insert(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        // First range whose end reaches `start` (may touch or overlap).
        let i = self.ranges.partition_point(|&(_, e)| e < start);
        let mut lo = start;
        let mut hi = end;
        let mut j = i;
        while j < self.ranges.len() && self.ranges[j].0 <= hi {
            lo = lo.min(self.ranges[j].0);
            hi = hi.max(self.ranges[j].1);
            j += 1;
        }
        self.ranges.splice(i..j, [(lo, hi)]);
    }

    /// Remove `[start, end)`, splitting any range it cuts through.
    pub fn remove(&mut self, start: usize, end: usize) {
        if start >= end {
            return;
        }
        // First range that extends past `start` (strictly — touching at
        // `start` is unaffected by the removal).
        let i = self.ranges.partition_point(|&(_, e)| e <= start);
        let mut replacement: Vec<(usize, usize)> = Vec::new();
        let mut j = i;
        while j < self.ranges.len() && self.ranges[j].0 < end {
            let (s, e) = self.ranges[j];
            if s < start {
                replacement.push((s, start));
            }
            if e > end {
                replacement.push((end, e));
            }
            j += 1;
        }
        if i < j {
            self.ranges.splice(i..j, replacement);
        }
    }

    /// Remove every byte of `other` from this set.
    pub fn subtract(&mut self, other: &RangeSet) {
        for (s, e) in other.iter() {
            self.remove(s, e);
        }
    }

    /// Insert every range of `other` into this set (set union).
    pub fn union_with(&mut self, other: &RangeSet) {
        for (s, e) in other.iter() {
            self.insert(s, e);
        }
    }

    /// Remove all ranges.
    pub fn clear(&mut self) {
        self.ranges.clear();
    }

    /// Whether the set contains no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Number of distinct ranges.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Total bytes covered.
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.ranges.iter().map(|(s, e)| e - s).sum()
    }

    /// Iterate the `[start, end)` ranges in address order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.ranges.iter().copied()
    }

    /// Whether any byte is covered by both sets (strict overlap;
    /// touching ranges do not count).
    #[must_use]
    pub fn overlaps(&self, other: &RangeSet) -> bool {
        // Walk the smaller set, binary-searching the larger.
        let (probe, base) = if self.ranges.len() <= other.ranges.len() {
            (self, other)
        } else {
            (other, self)
        };
        probe.ranges.iter().any(|&(s, e)| {
            let i = base.ranges.partition_point(|&(_, be)| be <= s);
            base.ranges.get(i).is_some_and(|&(bs, _)| bs < e)
        })
    }
}

/// Timing parameters of the DRAM + controller, in memory-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramTiming {
    /// Column-access (CAS) latency.
    pub cas: Cycle,
    /// Row-to-column delay (activate).
    pub rcd: Cycle,
    /// Row precharge latency.
    pub rp: Cycle,
    /// Fixed controller/queueing overhead per transaction.
    pub controller: Cycle,
    /// Row (page) size in bytes.
    pub row_bytes: u32,
    /// Data-bus beat width in bytes (MIG user interface).
    pub bytes_per_beat: u32,
}

impl DramTiming {
    /// Timing resembling the MIG DDR4 controller at 100 MHz on ZCU102.
    #[must_use]
    pub fn mig_ddr4() -> Self {
        DramTiming {
            cas: 11,
            rcd: 11,
            rp: 11,
            controller: 8,
            row_bytes: 2048,
            bytes_per_beat: 4,
        }
    }

    /// Memory-clock cycles a burst of `len` bytes at `addr` takes on an
    /// **uncontended** device: controller + CAS overhead, row activates
    /// (tracked against the caller-held `open_row` register, so a chunk
    /// sequence models row hits across chunks exactly like the device),
    /// then one data beat per cycle.
    ///
    /// This is the same arithmetic [`Dram`] charges when nothing else is
    /// queued — a pure function the pipelined frame scheduler uses to
    /// account an input preload without touching device state
    /// (`dram_quiet_burst_matches_model` pins the equivalence).
    #[must_use]
    pub fn burst_cycles_tracked(&self, open_row: &mut Option<u32>, addr: u32, len: usize) -> Cycle {
        let mut cycles = self.controller + self.cas;
        let first = addr / self.row_bytes;
        let last = (addr + len.max(1) as u32 - 1) / self.row_bytes;
        for row in first..=last {
            if *open_row != Some(row) {
                cycles += if open_row.is_some() {
                    self.rp + self.rcd
                } else {
                    self.rcd
                };
                *open_row = Some(row);
            }
        }
        cycles + (len as u64).div_ceil(u64::from(self.bytes_per_beat))
    }

    /// [`DramTiming::burst_cycles_tracked`] from the post-reset state
    /// (no open row).
    #[must_use]
    pub fn burst_cycles(&self, addr: u32, len: usize) -> Cycle {
        self.burst_cycles_tracked(&mut None, addr, len)
    }
}

impl Default for DramTiming {
    fn default() -> Self {
        Self::mig_ddr4()
    }
}

/// Access statistics kept by the DRAM model.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DramStats {
    /// Single-beat transactions served.
    pub accesses: u64,
    /// Burst (block) transactions served.
    pub bursts: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activate needed).
    pub row_misses: u64,
    /// Total bytes read.
    pub bytes_read: u64,
    /// Total bytes written.
    pub bytes_written: u64,
    /// Total cycles spent busy.
    pub busy_cycles: u64,
}

/// The DRAM device.
#[derive(Debug, Clone)]
pub struct Dram {
    data: Vec<u8>,
    timing: DramTiming,
    open_row: Option<u32>,
    busy_until: Cycle,
    stats: DramStats,
    /// Extents whose bytes may be nonzero (written since the contents
    /// were last all-zero).
    dirty: RangeSet,
    /// Resident weight images, disjoint from one another: preload
    /// contents that [`Reset::reset`] preserves, keyed by a caller-chosen
    /// image id ([`Dram::add_resident`]).
    resident: Vec<(u64, RangeSet)>,
    /// Extents written since residency went active (tracked only while
    /// at least one image is resident).
    run_writes: RangeSet,
    /// One-shot scoped-reset extents ([`Dram::preserve_across_reset`]):
    /// the next [`Reset::reset`] keeps these bytes (and their dirty
    /// marks) instead of zeroing them, then clears the set.
    preserve: RangeSet,
}

impl Dram {
    /// Create a zeroed DRAM of `size` bytes with the given timing.
    #[must_use]
    pub fn new(size: usize, timing: DramTiming) -> Self {
        Dram {
            data: vec![0; size],
            timing,
            open_row: None,
            busy_until: 0,
            stats: DramStats::default(),
            dirty: RangeSet::new(),
            resident: Vec::new(),
            run_writes: RangeSet::new(),
            preserve: RangeSet::new(),
        }
    }

    /// The device's timing parameters.
    #[must_use]
    pub fn timing(&self) -> DramTiming {
        self.timing
    }

    /// 512 MB DDR4 with MIG timing — the paper's configuration.
    #[must_use]
    pub fn zcu102() -> Self {
        Self::new(512 << 20, DramTiming::mig_ddr4())
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }

    /// Reset statistics (e.g. between benchmark phases).
    pub fn reset_stats(&mut self) {
        self.stats = DramStats::default();
    }

    /// Record a write to `[offset, offset + len)` in the dirty trackers.
    fn note_write(&mut self, offset: usize, len: usize) {
        self.dirty.insert(offset, offset + len);
        if !self.resident.is_empty() {
            self.run_writes.insert(offset, offset + len);
        }
    }

    /// Snapshot the current written extents as *resident*: preload
    /// contents (typically the weight image) that survive subsequent
    /// [`Reset::reset`] calls, so a compile-once/run-many caller pays
    /// the weight streaming exactly once. Replaces every existing image
    /// with a single image id 0 covering everything written so far; for
    /// several independent images use [`Dram::add_resident`].
    ///
    /// If a later run writes into a resident extent, the next reset
    /// detects the clobber, abandons that image and zeroes its extents —
    /// the caller observes [`Dram::is_resident`] go false and
    /// re-preloads.
    pub fn mark_resident(&mut self) {
        self.resident = vec![(0, self.dirty.clone())];
        self.run_writes.clear();
    }

    /// Register `extents` as resident image `id`: preload contents that
    /// survive subsequent [`Reset::reset`] calls, alongside any other
    /// registered image. The extents must already have been written
    /// (they are inserted into the dirty tracking either way) and must
    /// not overlap another image.
    ///
    /// Writes recorded since residency went active are forgiven inside
    /// `extents` (they *are* the preload), so the canonical sequence is
    /// `load` the image bytes, then `add_resident` them.
    ///
    /// # Errors
    ///
    /// [`BusError::ResidentOverlap`] if `extents` overlaps an existing
    /// image (including a previous image with the same id), or
    /// [`BusError::OutOfRange`] if it reaches past the end of the device.
    pub fn add_resident(&mut self, id: u64, extents: RangeSet) -> Result<(), BusError> {
        if let Some((s, e)) = extents.iter().find(|&(_, e)| e > self.data.len()) {
            return Err(BusError::OutOfRange {
                addr: s as u32,
                len: e - s,
                size: self.data.len(),
            });
        }
        if let Some(&(other, _)) = self.resident.iter().find(|(_, ext)| ext.overlaps(&extents)) {
            return Err(BusError::ResidentOverlap { image: other });
        }
        self.dirty.union_with(&extents);
        // The preload writes are protected contents, not run garbage.
        self.run_writes.subtract(&extents);
        self.resident.push((id, extents));
        Ok(())
    }

    /// Evict resident image `id`: its extents are zeroed immediately and
    /// no longer survive resets. Other images are untouched. Unknown ids
    /// are a no-op.
    pub fn remove_resident(&mut self, id: u64) {
        if let Some(i) = self.resident.iter().position(|(k, _)| *k == id) {
            let (_, extents) = self.resident.remove(i);
            Self::zero_ranges(&mut self.data, &extents);
            // The bytes are zero again: dropping them from the dirty
            // tracker keeps later resets from re-zeroing megabytes of
            // evicted weights on every frame.
            self.dirty.subtract(&extents);
            if self.resident.is_empty() {
                self.run_writes.clear();
            }
        }
    }

    /// Drop every resident mark (the next [`Reset::reset`] zeroes every
    /// written extent).
    pub fn clear_resident(&mut self) {
        self.resident.clear();
        self.run_writes.clear();
    }

    /// Scope the **next** [`Reset::reset`]: extents in `keep` survive it
    /// with their bytes and dirty marks intact, without being registered
    /// as resident images. One-shot — the reset consumes the set.
    ///
    /// This is the pipelined-frame primitive: frame N+1's input, streamed
    /// into its double-buffer slot while frame N computed, must outlive
    /// the inter-frame reset that zeroes frame N's input/activation/
    /// output extents. Unlike a resident image, a preserved extent has no
    /// identity and no clobber detection — it is whatever the last writer
    /// left there, protected exactly once.
    ///
    /// Preservation only shields bytes from the reset's zeroing; writes
    /// into *resident* images are still detected as clobbers by their own
    /// tracking, so preserving an extent can never resurrect a trampled
    /// weight image.
    pub fn preserve_across_reset(&mut self, keep: RangeSet) {
        self.preserve = keep;
    }

    /// Whether any resident image is active.
    #[must_use]
    pub fn is_resident(&self) -> bool {
        !self.resident.is_empty()
    }

    /// Whether image `id` is still resident (registered and not yet
    /// dropped by a clobbering reset or [`Dram::remove_resident`]).
    #[must_use]
    pub fn is_image_resident(&self, id: u64) -> bool {
        self.resident.iter().any(|(k, _)| *k == id)
    }

    /// Number of resident images.
    #[must_use]
    pub fn resident_images(&self) -> usize {
        self.resident.len()
    }

    /// Bytes covered by written extents (what a full reset would zero).
    #[must_use]
    pub fn dirty_bytes(&self) -> usize {
        self.dirty.total_bytes()
    }

    /// Zero every byte of the given range set.
    fn zero_ranges(data: &mut [u8], ranges: &RangeSet) {
        for (s, e) in ranges.iter() {
            data[s..e].fill(0);
        }
    }

    /// Backdoor bulk load (the Zynq PS preload path of Fig. 4 uses
    /// [`crate::smartconnect::SmartConnect`]; this is the zero-cycle test
    /// backdoor).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfRange`] if the image does not fit.
    pub fn load(&mut self, offset: usize, image: &[u8]) -> Result<(), BusError> {
        if offset + image.len() > self.data.len() {
            return Err(BusError::OutOfRange {
                addr: offset as u32,
                len: image.len(),
                size: self.data.len(),
            });
        }
        self.data[offset..offset + image.len()].copy_from_slice(image);
        self.note_write(offset, image.len());
        Ok(())
    }

    /// Backdoor read of memory contents.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn peek(&self, offset: usize, len: usize) -> &[u8] {
        &self.data[offset..offset + len]
    }

    fn row_of(&self, addr: u32) -> u32 {
        addr / self.timing.row_bytes
    }

    /// Cycles to open the row containing `addr` (0 on a hit) and update
    /// the open-row state.
    fn row_latency(&mut self, addr: u32) -> Cycle {
        let row = self.row_of(addr);
        if self.open_row == Some(row) {
            self.stats.row_hits += 1;
            0
        } else {
            let penalty = if self.open_row.is_some() {
                self.timing.rp + self.timing.rcd
            } else {
                self.timing.rcd
            };
            self.open_row = Some(row);
            self.stats.row_misses += 1;
            penalty
        }
    }

    fn check(&self, addr: u32, len: usize) -> Result<usize, BusError> {
        let offset = addr as usize;
        if offset + len > self.data.len() {
            return Err(BusError::OutOfRange {
                addr,
                len,
                size: self.data.len(),
            });
        }
        Ok(offset)
    }

    /// Serialize a request on the device timeline starting not before
    /// `now`, lasting `duration`; returns completion time.
    fn occupy(&mut self, now: Cycle, duration: Cycle) -> Cycle {
        let start = now.max(self.busy_until);
        let done = start + duration;
        self.busy_until = done;
        self.stats.busy_cycles += duration;
        done
    }

    fn burst_duration(&mut self, addr: u32, len: usize) -> Cycle {
        let t = self.timing;
        let mut cycles = t.controller + t.cas;
        // Row activations for every row the burst touches.
        let first_row = self.row_of(addr);
        let last_row = self.row_of(addr + len.max(1) as u32 - 1);
        for row in first_row..=last_row {
            cycles += self.row_latency(row * t.row_bytes);
        }
        // One beat per cycle once streaming.
        cycles += (len as u64).div_ceil(u64::from(t.bytes_per_beat));
        cycles
    }
}

impl Reset for Dram {
    /// Power-on reset **in place**: timing, statistics and the open-row
    /// state return to construction values, and contents return to the
    /// post-preload state — all-zero, except extents protected by
    /// [`Dram::add_resident`] / [`Dram::mark_resident`], which keep
    /// their bytes. Clobber detection is per image: an image whose
    /// extents were written into since it was registered is dropped and
    /// zeroed, while untouched images stay warm. Only the extents
    /// actually written are zeroed, so resetting a 512 MB device after a
    /// small-model inference costs microseconds, not a reallocation.
    ///
    /// A set armed with [`Dram::preserve_across_reset`] additionally
    /// survives this one reset (bytes and dirty marks), scoping the
    /// zeroing to everything *else* the run wrote — the input/activation
    /// clearing of a pipelined frame boundary.
    fn reset(&mut self) {
        let keep = std::mem::take(&mut self.preserve);
        if self.resident.is_empty() {
            let mut to_zero = std::mem::take(&mut self.dirty);
            to_zero.subtract(&keep);
            Self::zero_ranges(&mut self.data, &to_zero);
            self.dirty = keep;
        } else {
            // Drop every image the run clobbered, then zero **all**
            // written bytes except the surviving images' extents. Keying
            // the zeroing on `dirty` (not on `run_writes`) guarantees
            // the post-reset invariant even for bytes written while
            // residency was momentarily inactive — e.g. between a
            // `remove_resident` and the next `add_resident` — which the
            // run tracker does not see.
            let run = std::mem::take(&mut self.run_writes);
            let survivors: Vec<(u64, RangeSet)> = std::mem::take(&mut self.resident)
                .into_iter()
                .filter(|(_, extents)| !run.overlaps(extents))
                .collect();
            let mut to_zero = std::mem::take(&mut self.dirty);
            for (_, extents) in &survivors {
                to_zero.subtract(extents);
            }
            to_zero.subtract(&keep);
            Self::zero_ranges(&mut self.data, &to_zero);
            for (_, extents) in &survivors {
                self.dirty.union_with(extents);
            }
            self.dirty.union_with(&keep);
            self.resident = survivors;
        }
        self.run_writes.clear();
        self.open_row = None;
        self.busy_until = 0;
        self.stats = DramStats::default();
    }
}

impl Target for Dram {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        if !req.is_aligned() {
            return Err(BusError::Misaligned {
                addr: req.addr,
                align: req.size.bytes(),
            });
        }
        let n = req.size.bytes() as usize;
        let offset = self.check(req.addr, n)?;
        let t = self.timing;
        let duration = t.controller + t.cas + self.row_latency(req.addr) + 1;
        let done_at = self.occupy(now, duration);
        self.stats.accesses += 1;
        match req.kind {
            AccessKind::Read => {
                self.stats.bytes_read += n as u64;
                let mut v = [0u8; 8];
                v[..n].copy_from_slice(&self.data[offset..offset + n]);
                Ok(Response {
                    data: u64::from_le_bytes(v),
                    done_at,
                })
            }
            AccessKind::Write(d) => {
                self.stats.bytes_written += n as u64;
                let bytes = d.to_le_bytes();
                self.data[offset..offset + n].copy_from_slice(&bytes[..n]);
                self.note_write(offset, n);
                Ok(Response::ack(done_at))
            }
        }
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let offset = self.check(addr, buf.len())?;
        let duration = self.burst_duration(addr, buf.len());
        let done = self.occupy(now, duration);
        self.stats.bursts += 1;
        self.stats.bytes_read += buf.len() as u64;
        buf.copy_from_slice(&self.data[offset..offset + buf.len()]);
        Ok(done)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let offset = self.check(addr, buf.len())?;
        let duration = self.burst_duration(addr, buf.len());
        let done = self.occupy(now, duration);
        self.stats.bursts += 1;
        self.stats.bytes_written += buf.len() as u64;
        self.data[offset..offset + buf.len()].copy_from_slice(buf);
        self.note_write(offset, buf.len());
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessSize;

    fn small() -> Dram {
        Dram::new(64 << 10, DramTiming::mig_ddr4())
    }

    #[test]
    fn round_trip() {
        let mut d = small();
        d.access(&Request::write32(0x100, 0xCAFE_F00D), 0).unwrap();
        let r = d.access(&Request::read32(0x100), 100).unwrap();
        assert_eq!(r.data32(), 0xCAFE_F00D);
    }

    #[test]
    fn row_hit_faster_than_miss() {
        let mut d = small();
        let miss = d.access(&Request::read32(0), 0).unwrap().done_at;
        let t0 = miss;
        let hit = d.access(&Request::read32(4), t0).unwrap().done_at - t0;
        assert!(
            hit < miss,
            "row hit ({hit}) must be faster than cold miss ({miss})"
        );
        // Different row: precharge + activate.
        let t1 = t0 + hit;
        let conflict = d.access(&Request::read32(8192), t1).unwrap().done_at - t1;
        assert!(
            conflict > miss,
            "row conflict ({conflict}) pays precharge too"
        );
    }

    #[test]
    fn burst_amortizes_per_byte_cost() {
        let mut d = small();
        let mut buf = vec![0u8; 4096];
        let burst = d.read_block(0, &mut buf, 0).unwrap();
        // Scattered single-beat reads of the same data.
        let mut d2 = small();
        let mut t = 0;
        for i in 0..1024u32 {
            t = d2.access(&Request::read32(i * 4), t).unwrap().done_at;
        }
        assert!(
            burst * 5 < t,
            "burst ({burst}) should be >5x cheaper than scattered reads ({t})"
        );
    }

    #[test]
    fn burst_spanning_rows_pays_extra_activations() {
        let mut d = small();
        let mut one_row = vec![0u8; 2048];
        let t1 = d.read_block(0, &mut one_row, 0).unwrap();
        let mut d2 = small();
        let mut two_rows = vec![0u8; 2048];
        // Start mid-row so the burst straddles a row boundary.
        let t2 = d2.read_block(1024, &mut two_rows, 0).unwrap();
        assert!(
            t2 > t1,
            "straddling burst ({t2}) costs more than in-row ({t1})"
        );
    }

    #[test]
    fn device_timeline_serializes_overlapping_requests() {
        let mut d = small();
        let a = d.access(&Request::read32(0), 0).unwrap().done_at;
        // Request issued "in the past" still queues behind the first.
        let b = d.access(&Request::read32(4), 0).unwrap().done_at;
        assert!(b > a);
    }

    #[test]
    fn stats_accumulate() {
        let mut d = small();
        d.access(&Request::write32(0, 1), 0).unwrap();
        let mut buf = [0u8; 64];
        d.read_block(0, &mut buf, 0).unwrap();
        let s = d.stats();
        assert_eq!(s.accesses, 1);
        assert_eq!(s.bursts, 1);
        assert_eq!(s.bytes_written, 4);
        assert_eq!(s.bytes_read, 64);
        d.reset_stats();
        assert_eq!(d.stats(), DramStats::default());
    }

    #[test]
    fn double_width_access() {
        let mut d = small();
        d.access(
            &Request::write(8, 0x1122_3344_5566_7788, AccessSize::Double),
            0,
        )
        .unwrap();
        let r = d
            .access(&Request::read(8, AccessSize::Double), 200)
            .unwrap();
        assert_eq!(r.data, 0x1122_3344_5566_7788);
    }

    #[test]
    fn out_of_range() {
        let mut d = Dram::new(4096, DramTiming::mig_ddr4());
        assert!(d.access(&Request::read32(4096), 0).is_err());
        let mut buf = [0u8; 8];
        assert!(d.read_block(4092, &mut buf, 0).is_err());
    }

    #[test]
    fn rangeset_coalesces_and_measures() {
        let mut r = RangeSet::new();
        r.insert(10, 20);
        r.insert(30, 40);
        assert_eq!(r.len(), 2);
        r.insert(20, 30); // touches both -> one range
        assert_eq!(r.len(), 1);
        assert_eq!(r.total_bytes(), 30);
        r.insert(5, 12); // overlap extends left
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(5, 40)]);
        r.insert(100, 100); // empty range ignored
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn rangeset_overlap_is_strict() {
        let mut a = RangeSet::new();
        a.insert(0, 64);
        a.insert(128, 192);
        let mut b = RangeSet::new();
        b.insert(64, 128); // touches both, overlaps neither
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
        b.insert(191, 200);
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
    }

    #[test]
    fn rangeset_remove_splits_and_trims() {
        let mut r = RangeSet::new();
        r.insert(0, 100);
        r.remove(40, 60); // split in two
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(0, 40), (60, 100)]);
        r.remove(0, 10); // trim left edge
        r.remove(90, 200); // trim right edge past the end
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(10, 40), (60, 90)]);
        r.remove(0, 5); // disjoint below: no-op
        r.remove(45, 50); // in the gap: no-op
        r.remove(50, 40); // empty range: no-op
        assert_eq!(r.iter().collect::<Vec<_>>(), vec![(10, 40), (60, 90)]);
        r.remove(0, 1000); // covers everything
        assert!(r.is_empty());
    }

    #[test]
    fn rangeset_subtract_and_union() {
        let mut a = RangeSet::new();
        a.insert(0, 50);
        a.insert(100, 150);
        let mut b = RangeSet::new();
        b.insert(20, 120);
        let mut diff = a.clone();
        diff.subtract(&b);
        assert_eq!(diff.iter().collect::<Vec<_>>(), vec![(0, 20), (120, 150)]);
        let mut uni = a.clone();
        uni.union_with(&b);
        assert_eq!(uni.iter().collect::<Vec<_>>(), vec![(0, 150)]);
    }

    fn extents(ranges: &[(usize, usize)]) -> RangeSet {
        let mut r = RangeSet::new();
        for &(s, e) in ranges {
            r.insert(s, e);
        }
        r
    }

    #[test]
    fn two_resident_images_survive_reset_independently() {
        let mut d = small();
        d.load(0x100, &[1, 2, 3, 4]).unwrap();
        d.add_resident(7, extents(&[(0x100, 0x104)])).unwrap();
        d.load(0x800, &[5, 6, 7, 8]).unwrap();
        d.add_resident(8, extents(&[(0x800, 0x804)])).unwrap();
        assert_eq!(d.resident_images(), 2);
        // A run writes scratch data, then the fabric resets.
        d.write_block(0x2000, &[9; 64], 0).unwrap();
        d.reset();
        assert_eq!(d.peek(0x100, 4), &[1, 2, 3, 4], "image 7 warm");
        assert_eq!(d.peek(0x800, 4), &[5, 6, 7, 8], "image 8 warm");
        assert!(d.peek(0x2000, 64).iter().all(|&b| b == 0));
        assert_eq!(d.dirty_bytes(), 8, "only the two images stay dirty");
    }

    #[test]
    fn clobbering_one_image_keeps_the_other_warm() {
        let mut d = small();
        d.load(0x100, &[1, 2, 3, 4]).unwrap();
        d.add_resident(7, extents(&[(0x100, 0x104)])).unwrap();
        d.load(0x800, &[5, 6, 7, 8]).unwrap();
        d.add_resident(8, extents(&[(0x800, 0x804)])).unwrap();
        // The run tramples image 7's weights.
        d.access(&Request::write32(0x100, 0xDEAD_BEEF), 0).unwrap();
        d.reset();
        assert!(!d.is_image_resident(7), "clobbered image dropped");
        assert!(d.is_image_resident(8), "untouched image survives");
        assert!(
            d.peek(0x100, 4).iter().all(|&b| b == 0),
            "dropped image fully zeroed"
        );
        assert_eq!(d.peek(0x800, 4), &[5, 6, 7, 8]);
    }

    #[test]
    fn overlapping_image_registration_rejected() {
        let mut d = small();
        d.load(0x100, &[1; 64]).unwrap();
        d.add_resident(1, extents(&[(0x100, 0x140)])).unwrap();
        let e = d.add_resident(2, extents(&[(0x13c, 0x200)])).unwrap_err();
        assert!(matches!(e, BusError::ResidentOverlap { image: 1 }));
        // Touching (not overlapping) images are fine.
        d.load(0x140, &[2; 16]).unwrap();
        d.add_resident(2, extents(&[(0x140, 0x150)])).unwrap();
        assert_eq!(d.resident_images(), 2);
        // Past the end of the device is rejected outright.
        let far = d.size();
        let e = d.add_resident(3, extents(&[(far, far + 4)])).unwrap_err();
        assert!(matches!(e, BusError::OutOfRange { .. }));
    }

    #[test]
    fn remove_resident_zeroes_and_keeps_others() {
        let mut d = small();
        d.load(0x100, &[1, 2, 3, 4]).unwrap();
        d.add_resident(1, extents(&[(0x100, 0x104)])).unwrap();
        d.load(0x800, &[5, 6, 7, 8]).unwrap();
        d.add_resident(2, extents(&[(0x800, 0x804)])).unwrap();
        d.remove_resident(1);
        assert!(!d.is_image_resident(1));
        assert!(d.peek(0x100, 4).iter().all(|&b| b == 0), "evicted = zeroed");
        d.reset();
        assert_eq!(d.peek(0x800, 4), &[5, 6, 7, 8], "other image still warm");
        d.remove_resident(99); // unknown id: no-op
        assert_eq!(d.resident_images(), 1);
    }

    #[test]
    fn reset_zeroes_bytes_written_while_residency_was_inactive() {
        // Regression: writes that land while no image is resident are
        // not in `run_writes`; a later resident-mode reset must still
        // zero them (the zeroing keys on `dirty`, not the run tracker).
        let mut d = small();
        d.load(0x100, &[1, 2, 3, 4]).unwrap();
        d.load(0x900, &[9, 9, 9, 9]).unwrap();
        d.add_resident(1, extents(&[(0x100, 0x104)])).unwrap();
        d.reset();
        assert!(d.is_image_resident(1));
        assert_eq!(d.peek(0x100, 4), &[1, 2, 3, 4]);
        assert!(
            d.peek(0x900, 4).iter().all(|&b| b == 0),
            "pre-residency write must be zeroed by reset"
        );
        assert_eq!(d.dirty_bytes(), 4, "only the image stays dirty");
        // The same invariant across an unload → re-register gap.
        d.load(0x2000, &[7; 8]).unwrap(); // run garbage (tracked)
        d.remove_resident(1); // residency momentarily inactive
        d.load(0x800, &[5, 6, 7, 8]).unwrap(); // untracked
        d.add_resident(2, extents(&[(0x800, 0x804)])).unwrap();
        d.reset();
        assert!(d.is_image_resident(2));
        assert_eq!(d.peek(0x800, 4), &[5, 6, 7, 8]);
        assert!(d.peek(0x2000, 8).iter().all(|&b| b == 0));
        assert_eq!(d.dirty_bytes(), 4);
    }

    #[test]
    fn preload_writes_are_not_run_garbage() {
        // Loading image B while image A is resident must not count as a
        // clobbering run write against B itself.
        let mut d = small();
        d.load(0x100, &[1; 4]).unwrap();
        d.add_resident(1, extents(&[(0x100, 0x104)])).unwrap();
        d.load(0x800, &[2; 4]).unwrap();
        d.add_resident(2, extents(&[(0x800, 0x804)])).unwrap();
        d.reset();
        assert!(d.is_image_resident(1));
        assert!(d.is_image_resident(2), "own preload writes forgiven");
        assert_eq!(d.peek(0x800, 4), &[2; 4]);
    }

    #[test]
    fn reset_zeroes_only_written_extents_in_place() {
        let mut d = small();
        d.load(0x100, &[1, 2, 3, 4]).unwrap();
        d.access(&Request::write32(0x2000, 0xAAAA_AAAA), 0).unwrap();
        d.write_block(0x4000, &[0xFF; 64], 100).unwrap();
        assert_eq!(d.dirty_bytes(), 4 + 4 + 64);
        d.reset();
        assert_eq!(d.dirty_bytes(), 0);
        // Contents, timing and stats all back to power-on.
        assert!(d.peek(0, d.size()).iter().all(|&b| b == 0));
        assert_eq!(d.stats(), DramStats::default());
        let fresh = small().access(&Request::read32(0x100), 0).unwrap();
        let after = d.access(&Request::read32(0x100), 0).unwrap();
        assert_eq!(after.done_at, fresh.done_at, "cold row state restored");
    }

    #[test]
    fn reset_preserves_resident_extents() {
        let mut d = small();
        d.load(0x100, &[9, 8, 7, 6]).unwrap(); // "weights"
        d.mark_resident();
        d.load(0x2000, &[1, 1, 1, 1]).unwrap(); // "input"
        d.write_block(0x3000, &[2; 32], 0).unwrap(); // "activations"
        d.reset();
        assert!(d.is_resident());
        assert_eq!(d.peek(0x100, 4), &[9, 8, 7, 6], "weights survive");
        assert!(d.peek(0x2000, 4).iter().all(|&b| b == 0));
        assert!(d.peek(0x3000, 32).iter().all(|&b| b == 0));
        assert_eq!(d.dirty_bytes(), 4, "only the resident extent is dirty");
    }

    #[test]
    fn clobbering_resident_extent_abandons_residency() {
        let mut d = small();
        d.load(0x100, &[9, 8, 7, 6]).unwrap();
        d.mark_resident();
        d.access(&Request::write32(0x100, 0xDEAD_BEEF), 0).unwrap();
        d.reset();
        assert!(!d.is_resident(), "clobbered weights cannot stay resident");
        assert!(d.peek(0x100, 4).iter().all(|&b| b == 0));
        assert_eq!(d.dirty_bytes(), 0);
    }

    #[test]
    fn preserve_across_reset_is_scoped_and_one_shot() {
        let mut d = small();
        d.load(0x100, &[9, 8, 7, 6]).unwrap(); // weights
        d.add_resident(1, extents(&[(0x100, 0x104)])).unwrap();
        d.load(0x2000, &[1; 8]).unwrap(); // staged next input
        d.load(0x3000, &[2; 8]).unwrap(); // this frame's activations
        d.preserve_across_reset(extents(&[(0x2000, 0x2008)]));
        d.reset();
        assert_eq!(d.peek(0x100, 4), &[9, 8, 7, 6], "weights warm");
        assert_eq!(d.peek(0x2000, 8), &[1; 8], "staged input survives");
        assert!(d.peek(0x3000, 8).iter().all(|&b| b == 0), "scratch zeroed");
        assert_eq!(d.dirty_bytes(), 4 + 8, "image + preserved stay dirty");
        // One-shot: the next reset zeroes the previously preserved slot.
        d.reset();
        assert!(d.peek(0x2000, 8).iter().all(|&b| b == 0));
        assert_eq!(d.peek(0x100, 4), &[9, 8, 7, 6]);
    }

    #[test]
    fn preserve_without_residency_also_scopes_the_zeroing() {
        let mut d = small();
        d.load(0x400, &[5; 4]).unwrap();
        d.load(0x800, &[6; 4]).unwrap();
        d.preserve_across_reset(extents(&[(0x400, 0x404)]));
        d.reset();
        assert_eq!(d.peek(0x400, 4), &[5; 4]);
        assert!(d.peek(0x800, 4).iter().all(|&b| b == 0));
        assert_eq!(d.dirty_bytes(), 4);
    }

    #[test]
    fn preserve_cannot_resurrect_a_clobbered_image() {
        let mut d = small();
        d.load(0x100, &[1; 4]).unwrap();
        d.add_resident(1, extents(&[(0x100, 0x104)])).unwrap();
        // The run tramples the image; preserving an unrelated extent
        // must not stop the clobber detection from dropping it.
        d.access(&Request::write32(0x100, 0xDEAD_BEEF), 0).unwrap();
        d.load(0x2000, &[7; 4]).unwrap();
        d.preserve_across_reset(extents(&[(0x2000, 0x2004)]));
        d.reset();
        assert!(!d.is_image_resident(1), "clobbered image still dropped");
        assert!(d.peek(0x100, 4).iter().all(|&b| b == 0));
        assert_eq!(d.peek(0x2000, 4), &[7; 4]);
    }

    #[test]
    fn dram_quiet_burst_matches_model() {
        // DramTiming::burst_cycles must equal what the device charges
        // for the same burst as its first post-reset transaction.
        let t = DramTiming::mig_ddr4();
        for (addr, len) in [
            (0u32, 64usize),
            (0x100, 784),
            (1024, 3072),
            (2040, 16),   // straddles a row boundary
            (4096, 4096), // several rows
            (0, 0),
        ] {
            let mut d = small();
            let buf = vec![0xA5; len];
            let done = d.write_block(addr, &buf, 0).unwrap();
            assert_eq!(done, t.burst_cycles(addr, len), "addr {addr:#x} len {len}");
        }
    }

    #[test]
    fn reset_timing_matches_fresh_device() {
        // A reset device must replay the exact same timeline as a new one.
        let mut used = small();
        let mut buf = vec![0u8; 4096];
        used.read_block(0, &mut buf, 0).unwrap();
        used.access(&Request::write32(8192, 7), 50).unwrap();
        used.reset();
        let mut fresh = small();
        for t in [0u64, 3, 10] {
            let a = used.access(&Request::read32(64 * t as u32), t).unwrap();
            let b = fresh.access(&Request::read32(64 * t as u32), t).unwrap();
            assert_eq!(a.done_at, b.done_at);
            assert_eq!(a.data, b.data);
        }
    }
}
