//! AXI4 port model with burst transactions.
//!
//! AXI separates address and data channels and moves data in bursts of up
//! to 256 beats. The model charges a channel-handshake latency per burst
//! plus one cycle per data beat at the port's data width; the downstream
//! device may add its own latency (DRAM row misses etc.). This is the
//! protocol of the data memory and of NVDLA's 64-bit data backbone (DBB).

use crate::{BusError, Cycle, Request, Response, Target};

/// Configuration of an AXI port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AxiConfig {
    /// Data-bus width in bytes per beat (4 = 32-bit, 8 = 64-bit DBB,
    /// 64 = 512-bit `nv_full` DBB).
    pub data_bytes: u32,
    /// AR/AW channel handshake latency per burst.
    pub handshake: Cycle,
    /// Maximum beats per burst (AXI4: 256).
    pub max_burst: u32,
}

impl AxiConfig {
    /// 32-bit AXI, as used toward the data memory.
    #[must_use]
    pub fn axi32() -> Self {
        AxiConfig {
            data_bytes: 4,
            handshake: 2,
            max_burst: 256,
        }
    }

    /// 64-bit AXI, the `nv_small` DBB width.
    #[must_use]
    pub fn axi64() -> Self {
        AxiConfig {
            data_bytes: 8,
            handshake: 2,
            max_burst: 256,
        }
    }

    /// 512-bit AXI, the `nv_full` DBB width.
    #[must_use]
    pub fn axi512() -> Self {
        AxiConfig {
            data_bytes: 64,
            handshake: 2,
            max_burst: 256,
        }
    }
}

impl Default for AxiConfig {
    fn default() -> Self {
        Self::axi32()
    }
}

/// Statistics recorded by an [`AxiPort`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AxiStats {
    /// Bursts issued.
    pub bursts: u64,
    /// Total beats transferred.
    pub beats: u64,
    /// Total bytes transferred.
    pub bytes: u64,
}

/// An AXI manager port in front of a downstream target.
#[derive(Debug)]
pub struct AxiPort<T> {
    downstream: T,
    config: AxiConfig,
    stats: AxiStats,
}

impl<T: Target> AxiPort<T> {
    /// Wrap `downstream` behind an AXI port with `config`.
    pub fn new(downstream: T, config: AxiConfig) -> Self {
        AxiPort {
            downstream,
            config,
            stats: AxiStats::default(),
        }
    }

    /// Port configuration.
    pub fn config(&self) -> AxiConfig {
        self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AxiStats {
        self.stats
    }

    /// Access the wrapped downstream target directly (backdoor).
    pub fn downstream_mut(&mut self) -> &mut T {
        &mut self.downstream
    }

    /// Unwrap, returning the downstream target.
    pub fn into_inner(self) -> T {
        self.downstream
    }

    /// Protocol cost (handshakes + beat streaming) of moving `len` bytes,
    /// excluding downstream latency.
    #[must_use]
    pub fn protocol_cycles(&self, len: usize) -> Cycle {
        if len == 0 {
            return 0;
        }
        let beats = (len as u64).div_ceil(u64::from(self.config.data_bytes));
        let bursts = beats.div_ceil(u64::from(self.config.max_burst));
        bursts * self.config.handshake + beats
    }

    fn record(&mut self, len: usize) {
        let beats = (len as u64).div_ceil(u64::from(self.config.data_bytes));
        self.stats.bursts += beats.div_ceil(u64::from(self.config.max_burst)).max(1);
        self.stats.beats += beats;
        self.stats.bytes += len as u64;
    }
}

impl<T: Target> Target for AxiPort<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        // A single transfer is a one-beat burst.
        let issued = now + self.config.handshake;
        let resp = self.downstream.access(req, issued)?;
        self.record(req.size.bytes() as usize);
        Ok(resp)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let protocol = self.protocol_cycles(buf.len());
        let done = self.downstream.read_block(addr, buf, now)?;
        self.record(buf.len());
        // Protocol streaming and memory streaming overlap; the burst takes
        // whichever is longer.
        Ok(done.max(now + protocol))
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let protocol = self.protocol_cycles(buf.len());
        let done = self.downstream.write_block(addr, buf, now)?;
        self.record(buf.len());
        Ok(done.max(now + protocol))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn single_access_pays_handshake() {
        let mut p = AxiPort::new(Sram::new(64), AxiConfig::axi32());
        let r = p.access(&Request::read32(0), 0).unwrap();
        assert_eq!(r.done_at, 3); // 2 handshake + 1 SRAM
    }

    #[test]
    fn wider_bus_needs_fewer_protocol_cycles() {
        let narrow = AxiPort::new(Sram::new(64), AxiConfig::axi32());
        let wide = AxiPort::new(Sram::new(64), AxiConfig::axi512());
        assert!(wide.protocol_cycles(4096) < narrow.protocol_cycles(4096) / 8);
    }

    #[test]
    fn long_burst_splits_at_256_beats() {
        let p = AxiPort::new(Sram::new(64), AxiConfig::axi32());
        // 2048 bytes = 512 beats = 2 bursts => 2 handshakes + 512 beats.
        assert_eq!(p.protocol_cycles(2048), 2 * 2 + 512);
    }

    #[test]
    fn zero_length_costs_nothing() {
        let p = AxiPort::new(Sram::new(64), AxiConfig::axi64());
        assert_eq!(p.protocol_cycles(0), 0);
    }

    #[test]
    fn stats_track_beats_and_bytes() {
        let mut p = AxiPort::new(Sram::new(1024), AxiConfig::axi64());
        p.write_block(0, &vec![7u8; 256], 0).unwrap();
        let s = p.stats();
        assert_eq!(s.bytes, 256);
        assert_eq!(s.beats, 32); // 256 / 8
        assert_eq!(s.bursts, 1);
    }

    #[test]
    fn block_round_trip() {
        let mut p = AxiPort::new(Sram::new(1024), AxiConfig::axi64());
        let data: Vec<u8> = (0..128u8).collect();
        let t = p.write_block(64, &data, 0).unwrap();
        let mut out = vec![0u8; 128];
        p.read_block(64, &mut out, t).unwrap();
        assert_eq!(out, data);
    }
}
