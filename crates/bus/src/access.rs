//! Request/response types for transaction-level bus modeling.

use std::fmt;

/// Width of a single bus beat.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AccessSize {
    /// 8-bit access.
    Byte,
    /// 16-bit access.
    Half,
    /// 32-bit access.
    Word,
    /// 64-bit access (AXI/DBB only).
    Double,
}

impl AccessSize {
    /// Number of bytes moved by one beat of this size.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            AccessSize::Byte => 1,
            AccessSize::Half => 2,
            AccessSize::Word => 4,
            AccessSize::Double => 8,
        }
    }

    /// Mask keeping only the bits covered by this size.
    #[must_use]
    pub fn mask(self) -> u64 {
        match self {
            AccessSize::Byte => 0xFF,
            AccessSize::Half => 0xFFFF,
            AccessSize::Word => 0xFFFF_FFFF,
            AccessSize::Double => u64::MAX,
        }
    }

    /// Construct from a byte count.
    #[must_use]
    pub fn from_bytes(n: u32) -> Option<Self> {
        match n {
            1 => Some(AccessSize::Byte),
            2 => Some(AccessSize::Half),
            4 => Some(AccessSize::Word),
            8 => Some(AccessSize::Double),
            _ => None,
        }
    }
}

impl fmt::Display for AccessSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}B", self.bytes())
    }
}

/// Identifies which master issued a request; used by arbiters and
/// statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MasterId {
    /// The µRISC-V core's AHB-Lite port.
    Cpu,
    /// NVDLA's data-backbone (DBB) DMA port.
    NvdlaDbb,
    /// The Zynq PS (used only during DRAM preload, Fig. 4).
    ZynqPs,
}

impl fmt::Display for MasterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MasterId::Cpu => write!(f, "cpu"),
            MasterId::NvdlaDbb => write!(f, "nvdla-dbb"),
            MasterId::ZynqPs => write!(f, "zynq-ps"),
        }
    }
}

/// Read or write, with write data packed little-endian in a `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read request.
    Read,
    /// Write request carrying the data to store.
    Write(u64),
}

/// A single bus transaction request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Byte address of the transaction.
    pub addr: u32,
    /// Read or write (with data).
    pub kind: AccessKind,
    /// Beat width.
    pub size: AccessSize,
    /// Issuing master.
    pub master: MasterId,
}

impl Request {
    /// A read of the given size from the CPU master.
    #[must_use]
    pub fn read(addr: u32, size: AccessSize) -> Self {
        Request {
            addr,
            kind: AccessKind::Read,
            size,
            master: MasterId::Cpu,
        }
    }

    /// A write of the given size from the CPU master.
    #[must_use]
    pub fn write(addr: u32, data: u64, size: AccessSize) -> Self {
        Request {
            addr,
            kind: AccessKind::Write(data & size.mask()),
            size,
            master: MasterId::Cpu,
        }
    }

    /// Convenience 32-bit read.
    #[must_use]
    pub fn read32(addr: u32) -> Self {
        Self::read(addr, AccessSize::Word)
    }

    /// Convenience 32-bit write.
    #[must_use]
    pub fn write32(addr: u32, data: u32) -> Self {
        Self::write(addr, u64::from(data), AccessSize::Word)
    }

    /// Same request attributed to a different master.
    #[must_use]
    pub fn with_master(mut self, master: MasterId) -> Self {
        self.master = master;
        self
    }

    /// True if this is a write.
    #[must_use]
    pub fn is_write(&self) -> bool {
        matches!(self.kind, AccessKind::Write(_))
    }

    /// Write payload, or `None` for reads.
    #[must_use]
    pub fn write_data(&self) -> Option<u64> {
        match self.kind {
            AccessKind::Write(d) => Some(d),
            AccessKind::Read => None,
        }
    }

    /// Whether `addr` is naturally aligned for `size`.
    #[must_use]
    pub fn is_aligned(&self) -> bool {
        self.addr.is_multiple_of(self.size.bytes())
    }
}

/// The completion of a transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Response {
    /// Read data (zero for writes), packed little-endian.
    pub data: u64,
    /// Master-domain cycle at which the transaction completed.
    pub done_at: u64,
}

impl Response {
    /// A write acknowledgement completing at `done_at`.
    #[must_use]
    pub fn ack(done_at: u64) -> Self {
        Response { data: 0, done_at }
    }

    /// Read data as a 32-bit value.
    #[must_use]
    pub fn data32(&self) -> u32 {
        self.data as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_round_trips() {
        for n in [1u32, 2, 4, 8] {
            assert_eq!(AccessSize::from_bytes(n).unwrap().bytes(), n);
        }
        assert_eq!(AccessSize::from_bytes(3), None);
        assert_eq!(AccessSize::from_bytes(0), None);
    }

    #[test]
    fn write_data_is_masked() {
        let r = Request::write(0, 0x1_FFFF, AccessSize::Byte);
        assert_eq!(r.write_data(), Some(0xFF));
        let r = Request::write(0, u64::MAX, AccessSize::Word);
        assert_eq!(r.write_data(), Some(0xFFFF_FFFF));
    }

    #[test]
    fn alignment_check() {
        assert!(Request::read(4, AccessSize::Word).is_aligned());
        assert!(!Request::read(2, AccessSize::Word).is_aligned());
        assert!(Request::read(2, AccessSize::Half).is_aligned());
        assert!(Request::read(1, AccessSize::Byte).is_aligned());
        assert!(!Request::read(4, AccessSize::Double).is_aligned());
        assert!(Request::read(8, AccessSize::Double).is_aligned());
    }

    #[test]
    fn master_attribution() {
        let r = Request::read32(0).with_master(MasterId::NvdlaDbb);
        assert_eq!(r.master, MasterId::NvdlaDbb);
        assert_eq!(r.master.to_string(), "nvdla-dbb");
    }
}
