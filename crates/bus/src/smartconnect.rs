//! AXI SmartConnect mux (Fig. 4).
//!
//! "At any given time, the DRAM is connected either to the Zynq core or
//! the SoC using an AXI SmartConnect, which functions as a multiplexer."
//! The Zynq PS owns the DRAM during preload (weights + input image); the
//! SoC owns it during inference. Accesses from the disconnected side are
//! rejected, which is exactly the mutual exclusion the paper relies on.

use crate::{BusError, Cycle, MasterId, Request, Reset, Response, Target};

/// Which side of the mux currently owns the DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Side {
    /// The Zynq UltraScale+ processing system (preload path).
    ZynqPs,
    /// The RISC-V + NVDLA SoC (inference path).
    Soc,
}

impl std::fmt::Display for Side {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Side::ZynqPs => write!(f, "zynq-ps"),
            Side::Soc => write!(f, "soc"),
        }
    }
}

/// The SmartConnect multiplexer in front of the DRAM.
#[derive(Debug)]
pub struct SmartConnect<T> {
    dram: T,
    owner: Side,
    switches: u64,
    rejected: u64,
    /// Dual-port (pipelined) configuration: when set, the Zynq PS may
    /// stream preload bursts while the SoC side owns the mux. Like the
    /// clock configuration this survives [`Reset::reset`] — it models a
    /// synthesis-time crossbar topology, not run state.
    pipelined: bool,
    /// PS-side preload bursts admitted while the SoC owned the mux.
    ps_bursts: u64,
}

impl<T: Target> SmartConnect<T> {
    /// Routing latency added per transaction.
    pub const ROUTE: Cycle = 1;

    /// Create the mux with the PS side initially connected (board reset
    /// state: the PS must initialize DRAM first).
    pub fn new(dram: T) -> Self {
        SmartConnect {
            dram,
            owner: Side::ZynqPs,
            switches: 0,
            rejected: 0,
            pipelined: false,
            ps_bursts: 0,
        }
    }

    /// Currently connected side.
    pub fn owner(&self) -> Side {
        self.owner
    }

    /// Re-point the mux. Switching is a control-plane action (done from
    /// the PS in the paper) and costs no modeled SoC cycles.
    pub fn switch_to(&mut self, side: Side) {
        if self.owner != side {
            self.owner = side;
            self.switches += 1;
        }
    }

    /// Number of ownership switches so far.
    pub fn switches(&self) -> u64 {
        self.switches
    }

    /// Number of rejected (wrong-side) transactions.
    pub fn rejected(&self) -> u64 {
        self.rejected
    }

    /// Configure the dual-port (pipelined) topology: with `on`, the
    /// Zynq PS may stream preload bursts ([`SmartConnect::admit_ps_burst`])
    /// while the SoC side owns the mux — the AXI SmartConnect is a
    /// crossbar in hardware, and the strict mux is merely how the paper's
    /// harness drives it. Contention with the SoC's traffic is then
    /// resolved downstream on the shared device timeline, which is
    /// exactly what makes an overlapped preload cost real cycles.
    ///
    /// Configuration, not state: survives [`Reset::reset`].
    pub fn set_pipelined(&mut self, on: bool) {
        self.pipelined = on;
    }

    /// Whether the dual-port (pipelined) topology is configured.
    pub fn pipelined(&self) -> bool {
        self.pipelined
    }

    /// PS-side preload bursts admitted while the SoC owned the mux.
    pub fn ps_bursts(&self) -> u64 {
        self.ps_bursts
    }

    /// Gate one PS-side preload burst. While the PS owns the mux this is
    /// the ordinary preload path and always admits; while the SoC owns
    /// it, the burst is admitted (and counted) only in the pipelined
    /// topology.
    ///
    /// The block-transfer API is master-blind, so the SoC-level preload
    /// helper calls this explicitly before issuing the burst through the
    /// arbiter.
    ///
    /// # Errors
    ///
    /// [`BusError::SlaveError`] when the SoC owns the mux and pipelining
    /// is not configured.
    pub fn admit_ps_burst(&mut self, addr: u32) -> Result<(), BusError> {
        match self.owner {
            Side::ZynqPs => Ok(()),
            Side::Soc if self.pipelined => {
                self.ps_bursts += 1;
                Ok(())
            }
            Side::Soc => {
                self.rejected += 1;
                Err(BusError::SlaveError {
                    addr,
                    reason: "SmartConnect: PS burst while SoC owns the mux (not pipelined)",
                })
            }
        }
    }

    /// Access the DRAM directly (backdoor).
    pub fn dram_mut(&mut self) -> &mut T {
        &mut self.dram
    }

    fn side_of(master: MasterId) -> Side {
        match master {
            MasterId::ZynqPs => Side::ZynqPs,
            MasterId::Cpu | MasterId::NvdlaDbb => Side::Soc,
        }
    }

    fn check(&mut self, master: MasterId, addr: u32) -> Result<(), BusError> {
        if Self::side_of(master) == self.owner {
            Ok(())
        } else {
            self.rejected += 1;
            Err(BusError::SlaveError {
                addr,
                reason: "SmartConnect: DRAM owned by the other side",
            })
        }
    }
}

impl<T: Reset> Reset for SmartConnect<T> {
    /// Board reset: ownership returns to the Zynq PS (it must initialize
    /// DRAM first), counters clear, then the DRAM behind the mux resets.
    /// The pipelined topology flag is configuration and survives.
    fn reset(&mut self) {
        self.owner = Side::ZynqPs;
        self.switches = 0;
        self.rejected = 0;
        self.ps_bursts = 0;
        self.dram.reset();
    }
}

impl<T: Target> Target for SmartConnect<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        self.check(req.master, req.addr)?;
        self.dram.access(req, now + Self::ROUTE)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        // Bursts come from the DBB (SoC side) or PS preload; the Target
        // block API carries no master, so gate on the current owner by
        // allowing it — the SoC-level code switches ownership explicitly.
        self.dram.read_block(addr, buf, now + Self::ROUTE)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        self.dram.write_block(addr, buf, now + Self::ROUTE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn reset_state_is_ps_owned() {
        let sc = SmartConnect::new(Sram::new(64));
        assert_eq!(sc.owner(), Side::ZynqPs);
    }

    #[test]
    fn soc_rejected_while_ps_owns() {
        let mut sc = SmartConnect::new(Sram::new(64));
        let e = sc.access(&Request::read32(0), 0).unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
        assert_eq!(sc.rejected(), 1);
    }

    #[test]
    fn preload_then_switch_then_infer() {
        let mut sc = SmartConnect::new(Sram::new(64));
        // PS preloads weights.
        let ps = Request::write32(0, 0x1234).with_master(MasterId::ZynqPs);
        sc.access(&ps, 0).unwrap();
        // Hand over to the SoC.
        sc.switch_to(Side::Soc);
        assert_eq!(sc.switches(), 1);
        // Now the PS is locked out and the SoC reads the preloaded data.
        let ps_read = Request::read32(0).with_master(MasterId::ZynqPs);
        assert!(sc.access(&ps_read, 0).is_err());
        assert_eq!(sc.access(&Request::read32(0), 0).unwrap().data32(), 0x1234);
        // NVDLA's DBB also counts as the SoC side.
        let dbb = Request::read32(0).with_master(MasterId::NvdlaDbb);
        assert_eq!(sc.access(&dbb, 0).unwrap().data32(), 0x1234);
    }

    #[test]
    fn redundant_switch_not_counted() {
        let mut sc = SmartConnect::new(Sram::new(4));
        sc.switch_to(Side::ZynqPs);
        assert_eq!(sc.switches(), 0);
    }

    #[test]
    fn ps_bursts_gated_on_pipelined_topology() {
        let mut sc = SmartConnect::new(Sram::new(64));
        // PS owns: the ordinary preload path, always admitted.
        sc.admit_ps_burst(0).unwrap();
        assert_eq!(sc.ps_bursts(), 0, "PS-owned preload is not an overlap");
        sc.switch_to(Side::Soc);
        // SoC owns, strict mux: rejected.
        assert!(sc.admit_ps_burst(0x2000).is_err());
        assert_eq!(sc.rejected(), 1);
        // SoC owns, pipelined crossbar: admitted and counted.
        sc.set_pipelined(true);
        sc.admit_ps_burst(0x2000).unwrap();
        assert_eq!(sc.ps_bursts(), 1);
        // Reset clears the counter but keeps the topology.
        sc.reset();
        assert!(sc.pipelined());
        assert_eq!(sc.ps_bursts(), 0);
    }

    #[test]
    fn routing_adds_latency() {
        let mut sc = SmartConnect::new(Sram::new(64));
        sc.switch_to(Side::Soc);
        let r = sc.access(&Request::read32(0), 0).unwrap();
        assert_eq!(r.done_at, 2); // 1 route + 1 SRAM
    }
}
