//! AHB-Lite master-port model.
//!
//! The µRISC-V core talks to the system bus over AHB-Lite. AHB-Lite
//! pipelines the address and data phases: a non-sequential (NONSEQ)
//! transfer costs one address cycle plus the slave's data-phase wait
//! states, while back-to-back sequential (SEQ) transfers overlap the next
//! address phase with the current data phase and so cost only the data
//! phase. This port wraps a downstream [`Target`] and adds that protocol
//! cost on top of the slave's own latency.

use crate::{BusError, Cycle, Request, Response, Target};

/// Transfer type as driven on `HTRANS`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HTrans {
    /// Idle cycle.
    Idle,
    /// First transfer of a burst (or a single transfer).
    NonSeq,
    /// Continuation of a burst at the next sequential address.
    Seq,
}

/// Statistics recorded by an [`AhbPort`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AhbStats {
    /// Total transfers issued.
    pub transfers: u64,
    /// Transfers classified SEQ (pipelined).
    pub seq_transfers: u64,
    /// Total wait-state cycles inserted by slaves.
    pub wait_cycles: u64,
}

/// An AHB-Lite master port in front of a downstream target.
#[derive(Debug)]
pub struct AhbPort<T> {
    downstream: T,
    last_addr: Option<u32>,
    last_write: bool,
    stats: AhbStats,
}

impl<T: Target> AhbPort<T> {
    /// Address-phase cost of a NONSEQ transfer.
    pub const NONSEQ_COST: Cycle = 1;

    /// Wrap `downstream` behind an AHB-Lite port.
    pub fn new(downstream: T) -> Self {
        AhbPort {
            downstream,
            last_addr: None,
            last_write: false,
            stats: AhbStats::default(),
        }
    }

    /// Classify the next transfer the way the bus matrix would.
    fn classify(&self, req: &Request) -> HTrans {
        match self.last_addr {
            Some(prev)
                if req.addr == prev.wrapping_add(req.size.bytes())
                    && req.is_write() == self.last_write =>
            {
                HTrans::Seq
            }
            _ => HTrans::NonSeq,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> AhbStats {
        self.stats
    }

    /// Access the wrapped downstream target directly (backdoor).
    pub fn downstream_mut(&mut self) -> &mut T {
        &mut self.downstream
    }

    /// Unwrap, returning the downstream target.
    pub fn into_inner(self) -> T {
        self.downstream
    }
}

impl<T: Target> Target for AhbPort<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        let trans = self.classify(req);
        let addr_phase = match trans {
            HTrans::NonSeq => Self::NONSEQ_COST,
            _ => 0,
        };
        let issued = now + addr_phase;
        let resp = self.downstream.access(req, issued)?;
        self.stats.transfers += 1;
        if trans == HTrans::Seq {
            self.stats.seq_transfers += 1;
        }
        self.stats.wait_cycles += resp.done_at.saturating_sub(issued + 1);
        self.last_addr = Some(req.addr);
        self.last_write = req.is_write();
        Ok(resp)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        // An AHB block transfer is an INCR burst: one NONSEQ + SEQ beats.
        self.last_addr = None;
        let done = self
            .downstream
            .read_block(addr, buf, now + Self::NONSEQ_COST)?;
        self.stats.transfers += (buf.len() as u64).div_ceil(4);
        Ok(done)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        self.last_addr = None;
        let done = self
            .downstream
            .write_block(addr, buf, now + Self::NONSEQ_COST)?;
        self.stats.transfers += (buf.len() as u64).div_ceil(4);
        Ok(done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn nonseq_costs_extra_cycle() {
        let mut p = AhbPort::new(Sram::new(64));
        // Cold access: 1 (addr phase) + 1 (SRAM) = 2 cycles.
        let r = p.access(&Request::read32(0), 0).unwrap();
        assert_eq!(r.done_at, 2);
    }

    #[test]
    fn sequential_transfers_are_pipelined() {
        let mut p = AhbPort::new(Sram::new(64));
        let t0 = p.access(&Request::read32(0), 0).unwrap().done_at;
        let t1 = p.access(&Request::read32(4), t0).unwrap().done_at;
        // SEQ: no address-phase penalty, just the SRAM cycle.
        assert_eq!(t1 - t0, 1);
        assert_eq!(p.stats().seq_transfers, 1);
    }

    #[test]
    fn jumping_address_reverts_to_nonseq() {
        let mut p = AhbPort::new(Sram::new(64));
        let t0 = p.access(&Request::read32(0), 0).unwrap().done_at;
        let t1 = p.access(&Request::read32(32), t0).unwrap().done_at;
        assert_eq!(t1 - t0, 2);
        assert_eq!(p.stats().seq_transfers, 0);
    }

    #[test]
    fn direction_change_is_nonseq() {
        let mut p = AhbPort::new(Sram::new(64));
        let t0 = p.access(&Request::write32(0, 7), 0).unwrap().done_at;
        let t1 = p.access(&Request::read32(4), t0).unwrap().done_at;
        assert_eq!(t1 - t0, 2, "read after write at next addr is NONSEQ");
    }

    #[test]
    fn block_ops_pass_through() {
        let mut p = AhbPort::new(Sram::new(64));
        p.write_block(0, &[1, 2, 3, 4, 5, 6, 7, 8], 0).unwrap();
        let mut out = [0u8; 8];
        p.read_block(0, &mut out, 0).unwrap();
        assert_eq!(out, [1, 2, 3, 4, 5, 6, 7, 8]);
        assert!(p.stats().transfers >= 4);
    }

    #[test]
    fn wait_cycles_counted() {
        let mut p = AhbPort::new(crate::dram::Dram::new(4096, Default::default()));
        p.access(&Request::read32(0), 0).unwrap();
        assert!(p.stats().wait_cycles > 0, "DRAM inserts wait states");
    }
}
