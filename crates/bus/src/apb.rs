//! APB (Advanced Peripheral Bus) completer model.
//!
//! NVDLA's configuration space bus (CSB) is reached through an
//! APB-to-CSB adapter (shipped with the NVDLA package). APB is an
//! unpipelined two-phase protocol: every transfer spends one SETUP cycle
//! and at least one ACCESS cycle, plus any wait states the peripheral
//! requests via `PREADY`. This makes register programming inherently more
//! expensive than RAM access — the cost the paper's bare-metal trace
//! replay pays on every `write_reg`.

use crate::{AccessSize, BusError, Cycle, Request, Response, Target};

/// An APB completer port wrapping a register-file-like target.
#[derive(Debug)]
pub struct ApbPort<T> {
    peripheral: T,
    transfers: u64,
}

impl<T: Target> ApbPort<T> {
    /// SETUP phase cost.
    pub const SETUP: Cycle = 1;
    /// Minimum ACCESS phase cost.
    pub const ACCESS: Cycle = 1;

    /// Wrap `peripheral` behind an APB port.
    pub fn new(peripheral: T) -> Self {
        ApbPort {
            peripheral,
            transfers: 0,
        }
    }

    /// Number of APB transfers performed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Access the wrapped peripheral directly (backdoor).
    pub fn peripheral_mut(&mut self) -> &mut T {
        &mut self.peripheral
    }

    /// Unwrap, returning the peripheral.
    pub fn into_inner(self) -> T {
        self.peripheral
    }
}

impl<T: Target> Target for ApbPort<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        if req.size != AccessSize::Word {
            return Err(BusError::SlaveError {
                addr: req.addr,
                reason: "APB supports only 32-bit transfers",
            });
        }
        self.transfers += 1;
        // SETUP phase, then the peripheral's own latency is the ACCESS
        // phase (with wait states folded into its done_at).
        let issued = now + Self::SETUP;
        let resp = self.peripheral.access(req, issued)?;
        let done_at = resp.done_at.max(issued + Self::ACCESS);
        Ok(Response {
            data: resp.data,
            done_at,
        })
    }

    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        // A repeat issued here at `t` reaches the peripheral after the
        // SETUP phase, so the bound shifts back by the same amount.
        self.peripheral
            .read_lease(addr, now + Self::SETUP)
            .map(|until| until.saturating_sub(Self::SETUP))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn two_phase_minimum() {
        let mut p = ApbPort::new(Sram::new(64));
        let r = p.access(&Request::read32(0), 0).unwrap();
        // SETUP (1) + SRAM acting as ACCESS phase (1) = 2.
        assert_eq!(r.done_at, 2);
        assert_eq!(p.transfers(), 1);
    }

    #[test]
    fn no_pipelining_between_transfers() {
        let mut p = ApbPort::new(Sram::new(64));
        let t0 = p.access(&Request::read32(0), 0).unwrap().done_at;
        let t1 = p.access(&Request::read32(4), t0).unwrap().done_at;
        // APB never pipelines: every transfer pays full setup+access.
        assert_eq!(t1 - t0, 2);
    }

    #[test]
    fn rejects_narrow_transfers() {
        let mut p = ApbPort::new(Sram::new(64));
        let e = p
            .access(&Request::read(0, AccessSize::Byte), 0)
            .unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
    }

    #[test]
    fn write_read_round_trip() {
        let mut p = ApbPort::new(Sram::new(64));
        p.access(&Request::write32(8, 0xABCD_0123), 0).unwrap();
        let r = p.access(&Request::read32(8), 10).unwrap();
        assert_eq!(r.data32(), 0xABCD_0123);
    }
}
