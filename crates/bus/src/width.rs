//! AXI data-width converter.
//!
//! The NVDLA `nv_small` data backbone (DBB) is 64 bits wide while the data
//! memory port is 32 bits; the paper inserts an AXI data-width converter
//! between them (Fig. 2). Downconversion splits every wide beat into
//! `ratio` narrow beats, so the effective DBB bandwidth is divided by the
//! ratio — one of the dominant terms in `nv_small` layer latency.

use crate::{AccessSize, BusError, Cycle, Request, Reset, Response, Target};

/// A down-converting AXI width adapter (wide master → narrow slave).
#[derive(Debug)]
pub struct WidthConverter<T> {
    downstream: T,
    wide_bytes: u32,
    narrow_bytes: u32,
    beats_split: u64,
}

impl<T: Target> WidthConverter<T> {
    /// Packing/unpacking register latency per transaction.
    pub const PACK: Cycle = 1;

    /// Create a converter from `wide_bytes`-wide beats to
    /// `narrow_bytes`-wide beats.
    ///
    /// # Panics
    ///
    /// Panics if `wide_bytes` is not a positive multiple of `narrow_bytes`.
    pub fn new(downstream: T, wide_bytes: u32, narrow_bytes: u32) -> Self {
        assert!(
            narrow_bytes > 0
                && wide_bytes >= narrow_bytes
                && wide_bytes.is_multiple_of(narrow_bytes),
            "invalid width conversion {wide_bytes}->{narrow_bytes}"
        );
        WidthConverter {
            downstream,
            wide_bytes,
            narrow_bytes,
            beats_split: 0,
        }
    }

    /// The 64-bit → 32-bit converter used by the paper's SoC.
    pub fn dbb64_to_mem32(downstream: T) -> Self {
        Self::new(downstream, 8, 4)
    }

    /// Width ratio (narrow beats per wide beat).
    #[must_use]
    pub fn ratio(&self) -> u32 {
        self.wide_bytes / self.narrow_bytes
    }

    /// Wide beats that had to be split so far.
    pub fn beats_split(&self) -> u64 {
        self.beats_split
    }

    /// Access the wrapped downstream target directly (backdoor).
    pub fn downstream_mut(&mut self) -> &mut T {
        &mut self.downstream
    }
}

impl<T: Reset> Reset for WidthConverter<T> {
    /// Reset the split counter, then the narrow-side target.
    fn reset(&mut self) {
        self.beats_split = 0;
        self.downstream.reset();
    }
}

impl<T: Target> Target for WidthConverter<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        let beat = req.size.bytes();
        if beat <= self.narrow_bytes {
            // Fits the narrow side unchanged.
            return self.downstream.access(req, now + Self::PACK);
        }
        // Split a wide beat into narrow beats (little-endian order).
        self.beats_split += 1;
        let narrow = AccessSize::from_bytes(self.narrow_bytes).expect("validated in constructor");
        let parts = beat / self.narrow_bytes;
        let mut t = now + Self::PACK;
        let mut data: u64 = 0;
        for i in 0..parts {
            // Wrapping like [`Target::read_block`]'s beat walk: a wide
            // beat at the top of the 32-bit space must surface as the
            // downstream's typed rejection, not an overflow panic.
            let addr = req.addr.wrapping_add(i * self.narrow_bytes);
            let shift = i * self.narrow_bytes * 8;
            let sub = match req.kind {
                crate::AccessKind::Read => Request::read(addr, narrow).with_master(req.master),
                crate::AccessKind::Write(d) => {
                    Request::write(addr, d >> shift, narrow).with_master(req.master)
                }
            };
            let r = self.downstream.access(&sub, t)?;
            data |= (r.data & narrow.mask()) << shift;
            t = r.done_at;
        }
        Ok(Response { data, done_at: t })
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        // The narrow side streams at its own width; conversion adds the
        // packing register only.
        self.downstream.read_block(addr, buf, now + Self::PACK)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        self.downstream.write_block(addr, buf, now + Self::PACK)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn wide_beat_splits_into_two() {
        let mut c = WidthConverter::dbb64_to_mem32(Sram::new(64));
        let t = c
            .access(
                &Request::write(0, 0x1122_3344_5566_7788, AccessSize::Double),
                0,
            )
            .unwrap()
            .done_at;
        assert_eq!(c.beats_split(), 1);
        // Two SRAM beats + pack register.
        assert_eq!(t, 3);
        let r = c.access(&Request::read(0, AccessSize::Double), t).unwrap();
        assert_eq!(r.data, 0x1122_3344_5566_7788);
    }

    #[test]
    fn narrow_beats_pass_through() {
        let mut c = WidthConverter::dbb64_to_mem32(Sram::new(64));
        c.access(&Request::write32(8, 0xAABB_CCDD), 0).unwrap();
        assert_eq!(c.beats_split(), 0);
        assert_eq!(
            c.access(&Request::read32(8), 0).unwrap().data32(),
            0xAABB_CCDD
        );
    }

    #[test]
    fn little_endian_split_order() {
        let mut c = WidthConverter::dbb64_to_mem32(Sram::new(64));
        c.access(
            &Request::write(0, 0xDDCC_BBAA_4433_2211, AccessSize::Double),
            0,
        )
        .unwrap();
        // Low word lands at the low address.
        assert_eq!(
            c.downstream_mut()
                .access(&Request::read32(0), 0)
                .unwrap()
                .data32(),
            0x4433_2211
        );
        assert_eq!(
            c.downstream_mut()
                .access(&Request::read32(4), 0)
                .unwrap()
                .data32(),
            0xDDCC_BBAA
        );
    }

    #[test]
    #[should_panic(expected = "invalid width conversion")]
    fn rejects_non_multiple_ratio() {
        let _ = WidthConverter::new(Sram::new(4), 6, 4);
    }

    #[test]
    fn ratio_reported() {
        let c = WidthConverter::dbb64_to_mem32(Sram::new(4));
        assert_eq!(c.ratio(), 2);
    }

    #[test]
    fn blocks_round_trip() {
        let mut c = WidthConverter::dbb64_to_mem32(Sram::new(256));
        let data: Vec<u8> = (0..64).collect();
        c.write_block(0, &data, 0).unwrap();
        let mut out = vec![0u8; 64];
        c.read_block(0, &mut out, 0).unwrap();
        assert_eq!(out, data);
    }
}
