//! System-bus address decoder.
//!
//! The paper's system bus assigns two address spaces (Section IV-A):
//!
//! * NVDLA configuration registers: `0x0000_0000 ..= 0x000F_FFFF`
//! * DRAM data memory:              `0x0010_0000 ..= 0x200F_FFFF` (512 MB)
//!
//! This decoder is generic: any number of non-overlapping regions, each
//! backed by a boxed [`Target`]. Slaves see region-local addresses (the
//! decoder subtracts the base), matching how the RTL decoder strips the
//! upper bits.

use crate::{BusError, Cycle, Request, Response, Target};

/// The paper's NVDLA CSB window base address.
pub const NVDLA_BASE: u32 = 0x0000_0000;
/// The paper's NVDLA CSB window size (1 MB covers all registers).
pub const NVDLA_SIZE: u32 = 0x0010_0000;
/// The paper's DRAM window base address.
pub const DRAM_BASE: u32 = 0x0010_0000;
/// The paper's DRAM window size (512 MB).
pub const DRAM_SIZE: u32 = 0x2000_0000;

/// One decoded address region.
struct Region {
    name: String,
    base: u32,
    size: u32,
    target: Box<dyn Target + Send>,
}

impl std::fmt::Debug for Region {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Region")
            .field("name", &self.name)
            .field("base", &format_args!("{:#010x}", self.base))
            .field("size", &format_args!("{:#x}", self.size))
            .finish_non_exhaustive()
    }
}

impl Region {
    fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    fn overlaps(&self, base: u32, size: u32) -> bool {
        let a_end = u64::from(self.base) + u64::from(self.size);
        let b_end = u64::from(base) + u64::from(size);
        u64::from(self.base) < b_end && u64::from(base) < a_end
    }
}

/// Address decoder routing requests to region targets.
#[derive(Debug, Default)]
pub struct SystemBus {
    regions: Vec<Region>,
    decode_errors: u64,
}

impl SystemBus {
    /// An empty decoder.
    #[must_use]
    pub fn new() -> Self {
        SystemBus::default()
    }

    /// Add a region; fails if it overlaps an existing one or wraps the
    /// 32-bit address space.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::SlaveError`] on overlap and
    /// [`BusError::OutOfRange`] on wrap-around.
    pub fn add_region(
        &mut self,
        name: impl Into<String>,
        base: u32,
        size: u32,
        target: Box<dyn Target + Send>,
    ) -> Result<(), BusError> {
        if size == 0 || u64::from(base) + u64::from(size) > (1 << 32) {
            return Err(BusError::OutOfRange {
                addr: base,
                len: size as usize,
                size: usize::MAX,
            });
        }
        if self.regions.iter().any(|r| r.overlaps(base, size)) {
            return Err(BusError::SlaveError {
                addr: base,
                reason: "region overlaps an existing region",
            });
        }
        self.regions.push(Region {
            name: name.into(),
            base,
            size,
            target,
        });
        Ok(())
    }

    /// Name of the region decoding `addr`, if any.
    #[must_use]
    pub fn region_name(&self, addr: u32) -> Option<&str> {
        self.regions
            .iter()
            .find(|r| r.contains(addr))
            .map(|r| r.name.as_str())
    }

    /// Number of requests that decoded to no region.
    pub fn decode_errors(&self) -> u64 {
        self.decode_errors
    }

    fn route(&mut self, addr: u32, len: usize) -> Result<(&mut Region, u32), BusError> {
        let end = u64::from(addr) + len.max(1) as u64 - 1;
        let idx = self
            .regions
            .iter()
            .position(|r| r.contains(addr) && r.contains(end.min(u64::from(u32::MAX)) as u32));
        match idx {
            Some(i) => {
                let region = &mut self.regions[i];
                let local = addr - region.base;
                Ok((region, local))
            }
            None => {
                self.decode_errors += 1;
                Err(BusError::DecodeError { addr })
            }
        }
    }
}

impl Target for SystemBus {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        let (region, local) = self.route(req.addr, req.size.bytes() as usize)?;
        let mut local_req = *req;
        local_req.addr = local;
        region.target.access(&local_req, now)
    }

    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        // Decode adds no cycles, so the lease passes through unshifted.
        let region = self.regions.iter().find(|r| r.contains(addr))?;
        region.target.read_lease(addr - region.base, now)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let len = buf.len();
        let (region, local) = self.route(addr, len)?;
        region.target.read_block(local, buf, now)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let (region, local) = self.route(addr, buf.len())?;
        region.target.write_block(local, buf, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    fn paper_map() -> SystemBus {
        let mut bus = SystemBus::new();
        bus.add_region(
            "nvdla",
            NVDLA_BASE,
            NVDLA_SIZE,
            Box::new(Sram::new(NVDLA_SIZE as usize)),
        )
        .unwrap();
        bus.add_region("dram", DRAM_BASE, 0x1000, Box::new(Sram::new(0x1000)))
            .unwrap();
        bus
    }

    #[test]
    fn routes_by_region_with_local_addresses() {
        let mut bus = paper_map();
        // Write through the DRAM window; the slave sees a local address.
        bus.access(&Request::write32(DRAM_BASE + 8, 77), 0).unwrap();
        assert_eq!(
            bus.access(&Request::read32(DRAM_BASE + 8), 0)
                .unwrap()
                .data32(),
            77
        );
        // The same local offset in the NVDLA window is distinct.
        assert_eq!(bus.access(&Request::read32(8), 0).unwrap().data32(), 0);
    }

    #[test]
    fn region_names() {
        let bus = paper_map();
        assert_eq!(bus.region_name(0x42), Some("nvdla"));
        assert_eq!(bus.region_name(DRAM_BASE), Some("dram"));
        assert_eq!(bus.region_name(0xFFFF_FFFF), None);
    }

    #[test]
    fn unmapped_address_is_decode_error() {
        let mut bus = paper_map();
        let e = bus.access(&Request::read32(0x5000_0000), 0).unwrap_err();
        assert!(matches!(e, BusError::DecodeError { .. }));
        assert_eq!(bus.decode_errors(), 1);
    }

    #[test]
    fn overlapping_region_rejected() {
        let mut bus = paper_map();
        let e = bus
            .add_region("bad", NVDLA_SIZE - 4, 64, Box::new(Sram::new(64)))
            .unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
    }

    #[test]
    fn wrapping_region_rejected() {
        let mut bus = SystemBus::new();
        let e = bus
            .add_region("wrap", 0xFFFF_FFF0, 0x20, Box::new(Sram::new(0x20)))
            .unwrap_err();
        assert!(matches!(e, BusError::OutOfRange { .. }));
    }

    #[test]
    fn access_straddling_region_end_rejected() {
        let mut bus = paper_map();
        // Double word starting 4 bytes before the end of the nvdla window.
        let e = bus
            .access(&Request::read(NVDLA_SIZE - 4, crate::AccessSize::Double), 0)
            .unwrap_err();
        assert!(matches!(e, BusError::DecodeError { .. }));
    }

    #[test]
    fn block_ops_route() {
        let mut bus = paper_map();
        let data = [9u8; 32];
        bus.write_block(DRAM_BASE + 64, &data, 0).unwrap();
        let mut out = [0u8; 32];
        bus.read_block(DRAM_BASE + 64, &mut out, 0).unwrap();
        assert_eq!(out, data);
    }
}
