//! DRAM arbiter between the µRISC-V core and NVDLA's DBB.
//!
//! The paper's arbiter "manages potential conflicts between the core and
//! NVDLA" for the shared data memory and "ensures mutual exclusion". This
//! model serializes all requests on a single busy-until timeline, applies
//! a fixed grant policy (CPU has priority, matching the single-master-
//! at-a-time AHB side), and charges a one-cycle turnaround when ownership
//! changes. Per-master wait statistics expose the contention that the
//! paper's tightly-coupled design minimizes (the core is parked in a
//! register poll loop while NVDLA streams weights).

use std::collections::BTreeMap;

use crate::{BusError, Cycle, MasterId, Request, Reset, Response, Target};

/// Per-master contention statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Transactions granted.
    pub grants: u64,
    /// Cycles spent waiting for the grant.
    pub wait_cycles: u64,
    /// Bytes moved.
    pub bytes: u64,
}

/// A two-or-more-port arbiter in front of a single target.
///
/// Requests identify their port via [`Request::master`]; the arbiter is
/// itself a [`Target`], so it can sit directly in the address map.
#[derive(Debug)]
pub struct Arbiter<T> {
    downstream: T,
    busy_until: Cycle,
    last_owner: Option<MasterId>,
    stats: BTreeMap<MasterId, PortStats>,
}

impl<T: Target> Arbiter<T> {
    /// Bus-turnaround penalty when the granted master changes.
    pub const TURNAROUND: Cycle = 1;

    /// Create an arbiter in front of `downstream`.
    pub fn new(downstream: T) -> Self {
        Arbiter {
            downstream,
            busy_until: 0,
            last_owner: None,
            stats: BTreeMap::new(),
        }
    }

    /// Statistics for one master (zeros if it never issued a request).
    pub fn port_stats(&self, master: MasterId) -> PortStats {
        self.stats.get(&master).copied().unwrap_or_default()
    }

    /// Access the arbitrated target directly (backdoor, no arbitration).
    pub fn downstream_mut(&mut self) -> &mut T {
        &mut self.downstream
    }

    /// Unwrap, returning the downstream target.
    pub fn into_inner(self) -> T {
        self.downstream
    }

    /// Grant the bus: returns the cycle at which `master` may start.
    fn grant(&mut self, master: MasterId, now: Cycle) -> Cycle {
        let turnaround = match self.last_owner {
            Some(prev) if prev != master => Self::TURNAROUND,
            _ => 0,
        };
        let start = now.max(self.busy_until) + turnaround;
        let entry = self.stats.entry(master).or_default();
        entry.grants += 1;
        entry.wait_cycles += start - now;
        self.last_owner = Some(master);
        start
    }

    fn release(&mut self, master: MasterId, done: Cycle, bytes: usize) {
        self.busy_until = self.busy_until.max(done);
        self.stats.entry(master).or_default().bytes += bytes as u64;
    }

    /// [`Target::read_block`] with an explicit requesting master, for
    /// ports the blanket DBB attribution does not fit — the Zynq PS
    /// streaming a pipelined input preload while the SoC computes.
    ///
    /// # Errors
    ///
    /// Propagates the downstream device's [`BusError`].
    pub fn read_block_as(
        &mut self,
        master: MasterId,
        addr: u32,
        buf: &mut [u8],
        now: Cycle,
    ) -> Result<Cycle, BusError> {
        let start = self.grant(master, now);
        let done = self.downstream.read_block(addr, buf, start)?;
        self.release(master, done, buf.len());
        Ok(done)
    }

    /// [`Target::write_block`] with an explicit requesting master. See
    /// [`Arbiter::read_block_as`].
    ///
    /// # Errors
    ///
    /// Propagates the downstream device's [`BusError`].
    pub fn write_block_as(
        &mut self,
        master: MasterId,
        addr: u32,
        buf: &[u8],
        now: Cycle,
    ) -> Result<Cycle, BusError> {
        let start = self.grant(master, now);
        let done = self.downstream.write_block(addr, buf, start)?;
        self.release(master, done, buf.len());
        Ok(done)
    }
}

impl<T: Reset> Reset for Arbiter<T> {
    /// Reset the grant timeline and per-port statistics, then the
    /// arbitrated target.
    fn reset(&mut self) {
        self.busy_until = 0;
        self.last_owner = None;
        self.stats.clear();
        self.downstream.reset();
    }
}

impl<T: Target> Target for Arbiter<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        let start = self.grant(req.master, now);
        let resp = self.downstream.access(req, start)?;
        self.release(req.master, resp.done_at, req.size.bytes() as usize);
        Ok(resp)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        // Block transfers on the trait API are attributed to the DBB:
        // only NVDLA issues them in this SoC, and the Target block API
        // carries no master id. Other ports (the Zynq PS preload) use
        // [`Arbiter::read_block_as`] / [`Arbiter::write_block_as`].
        self.read_block_as(MasterId::NvdlaDbb, addr, buf, now)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        self.write_block_as(MasterId::NvdlaDbb, addr, buf, now)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dram::Dram;
    use crate::sram::Sram;

    #[test]
    fn serializes_conflicting_masters() {
        let mut a = Arbiter::new(Sram::new(64));
        let cpu = Request::read32(0);
        let dla = Request::read32(4).with_master(MasterId::NvdlaDbb);
        let t_cpu = a.access(&cpu, 0).unwrap().done_at;
        // NVDLA issues at the same time; it must wait for the CPU grant
        // plus the turnaround cycle.
        let t_dla = a.access(&dla, 0).unwrap().done_at;
        assert!(t_dla > t_cpu);
        assert!(a.port_stats(MasterId::NvdlaDbb).wait_cycles > 0);
        assert_eq!(a.port_stats(MasterId::Cpu).wait_cycles, 0);
    }

    #[test]
    fn same_master_back_to_back_has_no_turnaround() {
        let mut a = Arbiter::new(Sram::new(64));
        let t0 = a.access(&Request::read32(0), 0).unwrap().done_at;
        let t1 = a.access(&Request::read32(4), t0).unwrap().done_at;
        assert_eq!(t1 - t0, 1, "no penalty when owner unchanged");
    }

    #[test]
    fn turnaround_on_owner_change() {
        let mut a = Arbiter::new(Sram::new(64));
        let t0 = a.access(&Request::read32(0), 0).unwrap().done_at;
        let dla = Request::read32(4).with_master(MasterId::NvdlaDbb);
        let t1 = a.access(&dla, t0).unwrap().done_at;
        assert_eq!(t1 - t0, 1 + Arbiter::<Sram>::TURNAROUND);
    }

    #[test]
    fn burst_blocks_subsequent_cpu_access() {
        let mut a = Arbiter::new(Dram::new(64 << 10, Default::default()));
        let mut buf = vec![0u8; 4096];
        let dma_done = a.read_block(0, &mut buf, 0).unwrap();
        // CPU poll arriving mid-DMA waits for the whole burst.
        let cpu_done = a.access(&Request::read32(0), 10).unwrap().done_at;
        assert!(cpu_done > dma_done);
        assert!(a.port_stats(MasterId::Cpu).wait_cycles > 0);
    }

    #[test]
    fn reset_restores_fresh_timing_through_the_chain() {
        use crate::cdc::ClockCrossing;
        use crate::smartconnect::{Side, SmartConnect};
        // The SoC's DRAM-path chain: arbiter -> CDC -> mux -> DRAM.
        let build = || {
            let mut sc = SmartConnect::new(Dram::new(64 << 10, Default::default()));
            sc.switch_to(Side::Soc);
            Arbiter::new(ClockCrossing::new(sc, 100, 100, 1))
        };
        let mut fresh = build();
        let mut used = build();
        // Age the used chain with traffic, then reset it in place.
        let mut buf = vec![0u8; 4096];
        used.read_block(0, &mut buf, 0).unwrap();
        used.access(&Request::write32(0x40, 1), 9000).unwrap();
        used.reset();
        // Reset hands the mux back to the PS (board reset state).
        assert_eq!(used.downstream_mut().downstream_mut().owner(), Side::ZynqPs);
        used.downstream_mut().downstream_mut().switch_to(Side::Soc);
        let a = used.access(&Request::read32(0x40), 0).unwrap();
        let b = fresh.access(&Request::read32(0x40), 0).unwrap();
        assert_eq!(a.done_at, b.done_at, "reset chain replays fresh timing");
        assert_eq!(a.data, b.data, "written data zeroed");
        assert_eq!(used.port_stats(MasterId::Cpu).grants, 1);
    }

    #[test]
    fn ps_burst_contends_with_dbb_and_is_attributed() {
        let mut a = Arbiter::new(Dram::new(64 << 10, Default::default()));
        // PS streams the next frame's input first (pipelined preload)...
        let ps_done = a
            .write_block_as(MasterId::ZynqPs, 0x2000, &[1u8; 1024], 0)
            .unwrap();
        // ...so NVDLA's DMA issued mid-preload waits for it plus the
        // ownership turnaround.
        let mut buf = [0u8; 64];
        let dma_done = a.read_block(0, &mut buf, 10).unwrap();
        assert!(dma_done > ps_done);
        let ps = a.port_stats(MasterId::ZynqPs);
        assert_eq!(ps.grants, 1);
        assert_eq!(ps.bytes, 1024);
        assert_eq!(ps.wait_cycles, 0, "preload issued on a quiet bus");
        assert!(a.port_stats(MasterId::NvdlaDbb).wait_cycles > 0);
    }

    #[test]
    fn byte_accounting_per_master() {
        let mut a = Arbiter::new(Sram::new(4096));
        a.access(&Request::write32(0, 1), 0).unwrap();
        a.write_block(0, &[0u8; 256], 0).unwrap();
        assert_eq!(a.port_stats(MasterId::Cpu).bytes, 4);
        assert_eq!(a.port_stats(MasterId::NvdlaDbb).bytes, 256);
    }
}
