//! On-chip SRAM / block-RAM model (used for the RISC-V program memory).

use crate::{AccessKind, BusError, Cycle, Request, Reset, Response, Target};

/// Single-cycle on-chip memory.
///
/// The paper's program memory is built from FPGA block RAMs and serves one
/// 32-bit word per cycle with no wait states; reads and writes both cost
/// [`Sram::LATENCY`] cycles.
#[derive(Debug, Clone)]
pub struct Sram {
    data: Vec<u8>,
    read_only: bool,
}

impl Sram {
    /// Access latency in cycles (BRAM synchronous read).
    pub const LATENCY: Cycle = 1;

    /// Create a zero-initialized RAM of `size` bytes.
    #[must_use]
    pub fn new(size: usize) -> Self {
        Sram {
            data: vec![0; size],
            read_only: false,
        }
    }

    /// Create a ROM pre-loaded with `image` (writes are rejected).
    #[must_use]
    pub fn rom(image: Vec<u8>) -> Self {
        Sram {
            data: image,
            read_only: true,
        }
    }

    /// Size in bytes.
    #[must_use]
    pub fn size(&self) -> usize {
        self.data.len()
    }

    /// Bulk-load `image` at byte offset `offset` (backdoor, zero cycles) —
    /// models the simulation `$readmemh`/Zynq preload path.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::OutOfRange`] if the image does not fit.
    pub fn load(&mut self, offset: usize, image: &[u8]) -> Result<(), BusError> {
        let end = offset
            .checked_add(image.len())
            .ok_or(BusError::OutOfRange {
                addr: offset as u32,
                len: image.len(),
                size: self.data.len(),
            })?;
        if end > self.data.len() {
            return Err(BusError::OutOfRange {
                addr: offset as u32,
                len: image.len(),
                size: self.data.len(),
            });
        }
        self.data[offset..end].copy_from_slice(image);
        Ok(())
    }

    /// Backdoor view of the memory contents (no cycles consumed).
    #[must_use]
    pub fn bytes(&self) -> &[u8] {
        &self.data
    }

    fn check(&self, addr: u32, len: u32) -> Result<usize, BusError> {
        let offset = addr as usize;
        if offset + len as usize > self.data.len() {
            return Err(BusError::OutOfRange {
                addr,
                len: len as usize,
                size: self.data.len(),
            });
        }
        Ok(offset)
    }
}

impl Reset for Sram {
    /// Power-on reset in place: RAM contents return to zero; a ROM keeps
    /// its image (block-RAM initial contents survive reset on the FPGA).
    fn reset(&mut self) {
        if !self.read_only {
            self.data.fill(0);
        }
    }
}

impl Target for Sram {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        if !req.is_aligned() {
            return Err(BusError::Misaligned {
                addr: req.addr,
                align: req.size.bytes(),
            });
        }
        let n = req.size.bytes();
        let offset = self.check(req.addr, n)?;
        let done_at = now + Self::LATENCY;
        match req.kind {
            AccessKind::Read => {
                let mut v = [0u8; 8];
                v[..n as usize].copy_from_slice(&self.data[offset..offset + n as usize]);
                Ok(Response {
                    data: u64::from_le_bytes(v),
                    done_at,
                })
            }
            AccessKind::Write(d) => {
                if self.read_only {
                    return Err(BusError::SlaveError {
                        addr: req.addr,
                        reason: "write to read-only memory",
                    });
                }
                let bytes = d.to_le_bytes();
                self.data[offset..offset + n as usize].copy_from_slice(&bytes[..n as usize]);
                Ok(Response::ack(done_at))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AccessSize;

    #[test]
    fn read_write_all_sizes() {
        let mut m = Sram::new(64);
        m.access(&Request::write(0, 0xA5, AccessSize::Byte), 0)
            .unwrap();
        m.access(&Request::write(2, 0xBEEF, AccessSize::Half), 0)
            .unwrap();
        m.access(&Request::write(4, 0xDEAD_BEEF, AccessSize::Word), 0)
            .unwrap();
        m.access(
            &Request::write(8, 0x0123_4567_89AB_CDEF, AccessSize::Double),
            0,
        )
        .unwrap();
        assert_eq!(
            m.access(&Request::read(0, AccessSize::Byte), 0)
                .unwrap()
                .data,
            0xA5
        );
        assert_eq!(
            m.access(&Request::read(2, AccessSize::Half), 0)
                .unwrap()
                .data,
            0xBEEF
        );
        assert_eq!(
            m.access(&Request::read(4, AccessSize::Word), 0)
                .unwrap()
                .data,
            0xDEAD_BEEF
        );
        assert_eq!(
            m.access(&Request::read(8, AccessSize::Double), 0)
                .unwrap()
                .data,
            0x0123_4567_89AB_CDEF
        );
    }

    #[test]
    fn little_endian_layout() {
        let mut m = Sram::new(8);
        m.access(&Request::write32(0, 0x0403_0201), 0).unwrap();
        assert_eq!(m.bytes()[..4], [1, 2, 3, 4]);
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = Sram::new(4);
        let e = m.access(&Request::read32(4), 0).unwrap_err();
        assert!(matches!(e, BusError::OutOfRange { .. }));
        // A word read straddling the end is also rejected.
        let e = m
            .access(&Request::read(2, AccessSize::Word), 0)
            .unwrap_err();
        assert!(matches!(
            e,
            BusError::Misaligned { .. } | BusError::OutOfRange { .. }
        ));
    }

    #[test]
    fn misaligned_rejected() {
        let mut m = Sram::new(16);
        let e = m
            .access(&Request::read(1, AccessSize::Word), 0)
            .unwrap_err();
        assert_eq!(e, BusError::Misaligned { addr: 1, align: 4 });
    }

    #[test]
    fn rom_rejects_writes() {
        let mut m = Sram::rom(vec![0x13, 0, 0, 0]);
        assert_eq!(m.access(&Request::read32(0), 0).unwrap().data, 0x13);
        let e = m.access(&Request::write32(0, 1), 0).unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
    }

    #[test]
    fn load_backdoor() {
        let mut m = Sram::new(8);
        m.load(2, &[9, 8, 7]).unwrap();
        assert_eq!(&m.bytes()[2..5], &[9, 8, 7]);
        assert!(m.load(7, &[1, 2]).is_err());
    }

    #[test]
    fn latency_is_one_cycle() {
        let mut m = Sram::new(8);
        let r = m.access(&Request::read32(0), 41).unwrap();
        assert_eq!(r.done_at, 42);
    }
}
