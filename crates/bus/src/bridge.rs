//! Interface bridges of the NVDLA wrapper (Fig. 2).
//!
//! * [`AhbToApb`] — the open-source ARM AHB→APB bridge in front of the
//!   APB-to-CSB adapter. Every register access crosses it, so its latency
//!   multiplies across the thousands of `write_reg` commands in a
//!   configuration trace.
//! * [`AhbToAxi`] — connects the core's AHB-Lite port to the AXI data
//!   memory.

use crate::apb::ApbPort;
use crate::axi::{AxiConfig, AxiPort};
use crate::{BusError, Cycle, Request, Response, Target};

/// AHB-Lite → APB bridge.
///
/// The bridge re-times the AHB transfer into the APB clock enable, adding
/// a fixed resynchronization cost on top of APB's SETUP+ACCESS phases.
#[derive(Debug)]
pub struct AhbToApb<T> {
    apb: ApbPort<T>,
    crossings: u64,
}

impl<T: Target> AhbToApb<T> {
    /// Resynchronization latency added by the bridge, per transfer.
    pub const RESYNC: Cycle = 2;

    /// Bridge to an APB peripheral.
    pub fn new(peripheral: T) -> Self {
        AhbToApb {
            apb: ApbPort::new(peripheral),
            crossings: 0,
        }
    }

    /// Total transfers that crossed the bridge.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Total AHB-side cycles one register access costs in steady state
    /// (bridge resync + APB setup + APB access), excluding the
    /// peripheral's own wait states.
    #[must_use]
    pub fn nominal_latency() -> Cycle {
        Self::RESYNC + ApbPort::<T>::SETUP + ApbPort::<T>::ACCESS
    }

    /// Access the wrapped peripheral directly (backdoor).
    pub fn peripheral_mut(&mut self) -> &mut T {
        self.apb.peripheral_mut()
    }
}

impl<T: Target> Target for AhbToApb<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        self.crossings += 1;
        self.apb.access(req, now + Self::RESYNC)
    }

    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        // A repeat issued here at `t` reaches the APB port at
        // `t + RESYNC`, so the bound shifts back by the same amount.
        self.apb
            .read_lease(addr, now + Self::RESYNC)
            .map(|until| until.saturating_sub(Self::RESYNC))
    }
}

/// AHB-Lite → AXI bridge.
///
/// Buffers one AHB transfer and replays it as a single-beat AXI burst;
/// block transfers become INCR bursts.
#[derive(Debug)]
pub struct AhbToAxi<T> {
    axi: AxiPort<T>,
    crossings: u64,
}

impl<T: Target> AhbToAxi<T> {
    /// Store-and-forward latency added by the bridge FIFO.
    pub const FIFO: Cycle = 1;

    /// Bridge to an AXI subordinate with the given port configuration.
    pub fn new(downstream: T, config: AxiConfig) -> Self {
        AhbToAxi {
            axi: AxiPort::new(downstream, config),
            crossings: 0,
        }
    }

    /// Total transfers that crossed the bridge.
    pub fn crossings(&self) -> u64 {
        self.crossings
    }

    /// Access the wrapped downstream target directly (backdoor).
    pub fn downstream_mut(&mut self) -> &mut T {
        self.axi.downstream_mut()
    }

    /// Statistics of the AXI side.
    pub fn axi_stats(&self) -> crate::axi::AxiStats {
        self.axi.stats()
    }
}

impl<T: Target> Target for AhbToAxi<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        self.crossings += 1;
        self.axi.access(req, now + Self::FIFO)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        self.crossings += 1;
        self.axi.read_block(addr, buf, now + Self::FIFO)
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        self.crossings += 1;
        self.axi.write_block(addr, buf, now + Self::FIFO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;

    #[test]
    fn ahb_to_apb_latency_stack() {
        let mut b = AhbToApb::new(Sram::new(64));
        let r = b.access(&Request::write32(0, 5), 0).unwrap();
        // RESYNC(2) + SETUP(1) + SRAM-as-ACCESS(1) = 4.
        assert_eq!(r.done_at, 4);
        assert_eq!(b.crossings(), 1);
    }

    #[test]
    fn nominal_latency_matches_observed_floor() {
        // Peripheral with zero extra wait states would still pay this.
        assert_eq!(AhbToApb::<Sram>::nominal_latency(), 4);
    }

    #[test]
    fn register_access_dearer_than_ram_access() {
        // The motivating asymmetry: a CSB register write (through the
        // bridge) costs multiple cycles; a program-memory fetch costs one.
        let mut bridge = AhbToApb::new(Sram::new(64));
        let reg = bridge.access(&Request::write32(0, 1), 0).unwrap().done_at;
        let mut ram = Sram::new(64);
        let mem = ram.access(&Request::write32(0, 1), 0).unwrap().done_at;
        assert!(reg >= 4 * mem);
    }

    #[test]
    fn ahb_to_axi_round_trip() {
        let mut b = AhbToAxi::new(Sram::new(256), AxiConfig::axi32());
        let t = b
            .access(&Request::write32(16, 0x55AA_55AA), 0)
            .unwrap()
            .done_at;
        let r = b.access(&Request::read32(16), t).unwrap();
        assert_eq!(r.data32(), 0x55AA_55AA);
        assert_eq!(b.crossings(), 2);
    }

    #[test]
    fn ahb_to_axi_block_uses_bursts() {
        let mut b = AhbToAxi::new(Sram::new(4096), AxiConfig::axi64());
        let data = vec![3u8; 1024];
        b.write_block(0, &data, 0).unwrap();
        assert_eq!(b.axi_stats().beats, 128);
        let mut out = vec![0u8; 1024];
        b.read_block(0, &mut out, 0).unwrap();
        assert_eq!(out, data);
    }
}
