//! Deterministic fault injection for any fabric edge.
//!
//! A [`FaultInjector`] wraps any [`Target`] and, driven by a seeded
//! [`FaultPlan`], corrupts read data (bit flips), returns typed
//! [`BusError::Injected`] responses, or stretches transaction latency
//! (spikes). With no plan armed the shim is one branch on the hot path
//! and otherwise forwards everything untouched — the faults-off timing
//! and data are bit- and cycle-identical to an unwrapped device.
//!
//! # Determinism
//!
//! Every fault decision is a pure function of `(seed, access index)`
//! via SplitMix64 — never of host time, thread scheduling, or the
//! *addresses* involved. Two runs that issue the same transaction
//! sequence to the injector therefore observe the same faults at the
//! same points, which is what lets a chaos-serving run be replayed
//! with zero divergence and lets a fuzz counterexample be promoted to
//! a fixed-seed regression test.
//!
//! Probability rates are expressed in **events per million accesses**
//! so plans stay integer-only (no float drift across platforms). A
//! [`FaultPlan::at`] schedule pins faults to exact access indices on
//! top of (or instead of) the probabilistic stream — handy for tests
//! that need "access #3 of this frame returns a bus error".
//!
//! # Reset semantics
//!
//! Resetting a `FaultInjector` resets the device underneath but
//! deliberately preserves the injector's access counter, plan and
//! statistics. This is the second documented exception to the
//! [`Reset`] bit-identity contract (after [`crate::dram::Dram`]
//! residency): a chaos plan describes a *fleet lifetime*, not one
//! frame, so the fault stream must keep advancing across the per-frame
//! resets a warm SoC performs. Disarm (or re-arm) the plan explicitly
//! to return to a pristine fault state.

use crate::{BusError, Cycle, Request, Reset, Response, Target};

/// One scheduled fault: at global access index `access`, apply `kind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Zero-based index in the injector's access stream.
    pub access: u64,
    /// What to inject.
    pub kind: FaultKind,
}

/// The kinds of fault the shim can inject on a single transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// XOR the read data with `mask` (silent corruption; writes and
    /// timing are untouched). On a write this is a no-op.
    BitFlip {
        /// XOR mask applied to the 64-bit read data.
        mask: u64,
    },
    /// Fail the transaction with [`BusError::Injected`] before it
    /// reaches the device (no device state changes).
    ErrorResponse,
    /// Let the transaction proceed, then stretch its completion by
    /// `cycles` (models a refresh collision, a retrained link, or —
    /// with a huge value — a hang that a watchdog must catch).
    LatencySpike {
        /// Extra cycles added to `done_at`.
        cycles: u64,
    },
}

/// A seeded description of which accesses fault and how.
///
/// Rates are per-million-accesses; `schedule` entries fire exactly at
/// their access index and take precedence over the probabilistic
/// stream. The default plan injects nothing (all rates zero).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Seed for the per-access fault lottery.
    pub seed: u64,
    /// Bit-flip rate, events per million accesses.
    pub flip_per_million: u32,
    /// Error-response rate, events per million accesses.
    pub error_per_million: u32,
    /// Latency-spike rate, events per million accesses.
    pub spike_per_million: u32,
    /// Magnitude of probabilistic latency spikes, in cycles.
    pub spike_cycles: u64,
    /// Exact-index faults, applied on top of the probabilistic stream.
    pub schedule: Vec<ScheduledFault>,
}

impl FaultPlan {
    /// A plan that injects nothing but still runs the decision path —
    /// used to prove the armed-but-quiet overhead is negligible.
    pub fn quiet(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// Add a scheduled fault at `access`, returning `self` for chaining.
    #[must_use]
    pub fn at(mut self, access: u64, kind: FaultKind) -> Self {
        self.schedule.push(ScheduledFault { access, kind });
        self
    }

    /// True when the plan can never fire (no rates, no schedule).
    pub fn is_quiet(&self) -> bool {
        self.flip_per_million == 0
            && self.error_per_million == 0
            && self.spike_per_million == 0
            && self.schedule.is_empty()
    }

    /// Decide the fault (if any) for access index `n`.
    fn decide(&self, n: u64) -> Option<FaultKind> {
        if let Some(s) = self.schedule.iter().find(|s| s.access == n) {
            return Some(s.kind);
        }
        let total = u64::from(self.flip_per_million)
            + u64::from(self.error_per_million)
            + u64::from(self.spike_per_million);
        if total == 0 {
            return None;
        }
        let h = mix64(self.seed ^ n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let draw = h % 1_000_000;
        if draw >= total {
            return None;
        }
        if draw < u64::from(self.flip_per_million) {
            // Derive a nonzero mask from an independent hash lane.
            let mask = mix64(h) | 1;
            Some(FaultKind::BitFlip { mask })
        } else if draw < u64::from(self.flip_per_million) + u64::from(self.error_per_million) {
            Some(FaultKind::ErrorResponse)
        } else {
            Some(FaultKind::LatencySpike {
                cycles: self.spike_cycles,
            })
        }
    }
}

/// Fault-stream statistics (what actually fired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Total transactions seen while a plan was armed.
    pub accesses: u64,
    /// Read-data bit flips applied.
    pub flips: u64,
    /// Typed error responses injected.
    pub errors: u64,
    /// Latency spikes applied.
    pub spikes: u64,
}

impl FaultStats {
    /// Total faults of any kind.
    pub fn total(&self) -> u64 {
        self.flips + self.errors + self.spikes
    }

    /// Counter-wise difference since `earlier` (same injector, later in
    /// time) — the repo-wide snapshot-delta convention
    /// (`BlockCacheStats::since`).
    #[must_use]
    pub fn since(&self, earlier: &FaultStats) -> FaultStats {
        FaultStats {
            accesses: self.accesses - earlier.accesses,
            flips: self.flips - earlier.flips,
            errors: self.errors - earlier.errors,
            spikes: self.spikes - earlier.spikes,
        }
    }

    /// Publish these counters into a [`rvnv_obs::MetricsRegistry`]
    /// under the `fault.*` namespace. Call with a delta ([`FaultStats::since`])
    /// to publish one run's share, or with cumulative stats once.
    pub fn publish(&self, metrics: &rvnv_obs::MetricsRegistry) {
        metrics.counter("fault.accesses", self.accesses);
        metrics.counter("fault.flips", self.flips);
        metrics.counter("fault.errors", self.errors);
        metrics.counter("fault.spikes", self.spikes);
    }
}

/// The injection shim. Wraps a downstream [`Target`]; see the module
/// docs for determinism and reset semantics.
#[derive(Debug)]
pub struct FaultInjector<T> {
    inner: T,
    plan: Option<FaultPlan>,
    access: u64,
    stats: FaultStats,
}

impl<T> FaultInjector<T> {
    /// Wrap `inner` with faults disabled (pure passthrough).
    pub fn new(inner: T) -> Self {
        FaultInjector {
            inner,
            plan: None,
            access: 0,
            stats: FaultStats::default(),
        }
    }

    /// Arm a fault plan; restarts the access counter and statistics so
    /// the stream is reproducible from this point.
    pub fn arm(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
        self.access = 0;
        self.stats = FaultStats::default();
    }

    /// Disarm: back to the untouched fast path. Statistics survive for
    /// post-mortem reads until the next [`FaultInjector::arm`].
    pub fn disarm(&mut self) {
        self.plan = None;
    }

    /// The armed plan, if any.
    pub fn plan(&self) -> Option<&FaultPlan> {
        self.plan.as_ref()
    }

    /// What has fired since the plan was armed.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Direct access to the wrapped device (backdoors bypass injection).
    pub fn inner_mut(&mut self) -> &mut T {
        &mut self.inner
    }

    /// Shared access to the wrapped device.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Draw the fault decision for the next access and advance the
    /// stream. Returns `None` both when disarmed and when the armed
    /// plan stays quiet for this index.
    fn next_fault(&mut self, _addr: u32) -> (u64, Option<FaultKind>) {
        let n = self.access;
        match &self.plan {
            None => (n, None),
            Some(plan) => {
                self.access += 1;
                self.stats.accesses += 1;
                (n, plan.decide(n))
            }
        }
    }
}

/// SplitMix64 mix function (Steele, Lea, Flood 2014) — now the
/// workspace-shared copy in `rvnv_util`, re-exported under its old
/// path so higher layers (the serving simulator's per-attempt fault
/// lottery, the fabric fuzz fingerprints) keep the exact same mixer
/// without growing a second, subtly different one.
pub use rvnv_util::mix64;

impl<T: Target> Target for FaultInjector<T> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        let (n, fault) = self.next_fault(req.addr);
        match fault {
            None => self.inner.access(req, now),
            Some(FaultKind::ErrorResponse) => {
                self.stats.errors += 1;
                Err(BusError::Injected {
                    addr: req.addr,
                    access: n,
                })
            }
            Some(FaultKind::BitFlip { mask }) => {
                let mut resp = self.inner.access(req, now)?;
                if !req.is_write() {
                    self.stats.flips += 1;
                    resp.data ^= mask & req.size.mask();
                }
                Ok(resp)
            }
            Some(FaultKind::LatencySpike { cycles }) => {
                let mut resp = self.inner.access(req, now)?;
                self.stats.spikes += 1;
                resp.done_at = resp.done_at.saturating_add(cycles);
                Ok(resp)
            }
        }
    }

    /// A lease promises repeat reads are stable; an armed plan can
    /// break that promise at any index, so leases are only forwarded
    /// on the untouched fast path.
    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        if self.plan.is_some() {
            return None;
        }
        self.inner.read_lease(addr, now)
    }

    fn read_block(&mut self, addr: u32, buf: &mut [u8], now: Cycle) -> Result<Cycle, BusError> {
        let (n, fault) = self.next_fault(addr);
        match fault {
            None => self.inner.read_block(addr, buf, now),
            Some(FaultKind::ErrorResponse) => {
                self.stats.errors += 1;
                Err(BusError::Injected { addr, access: n })
            }
            Some(FaultKind::BitFlip { mask }) => {
                let done = self.inner.read_block(addr, buf, now)?;
                self.stats.flips += 1;
                // Flip within the first 8 bytes of the burst.
                let flip = mask.to_le_bytes();
                for (b, m) in buf.iter_mut().zip(flip.iter()) {
                    *b ^= m;
                }
                Ok(done)
            }
            Some(FaultKind::LatencySpike { cycles }) => {
                let done = self.inner.read_block(addr, buf, now)?;
                self.stats.spikes += 1;
                Ok(done.saturating_add(cycles))
            }
        }
    }

    fn write_block(&mut self, addr: u32, buf: &[u8], now: Cycle) -> Result<Cycle, BusError> {
        let (n, fault) = self.next_fault(addr);
        match fault {
            None => self.inner.write_block(addr, buf, now),
            Some(FaultKind::ErrorResponse) => {
                self.stats.errors += 1;
                Err(BusError::Injected { addr, access: n })
            }
            // Flips target read data; a flipped write is modeled as a
            // flip on whatever read observes it later, so here the
            // write proceeds untouched.
            Some(FaultKind::BitFlip { .. }) => self.inner.write_block(addr, buf, now),
            Some(FaultKind::LatencySpike { cycles }) => {
                let done = self.inner.write_block(addr, buf, now)?;
                self.stats.spikes += 1;
                Ok(done.saturating_add(cycles))
            }
        }
    }
}

impl<T: Reset> Reset for FaultInjector<T> {
    /// Resets the device underneath; the fault stream (plan, counter,
    /// stats) survives by contract — see the module docs.
    fn reset(&mut self) {
        self.inner.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sram::Sram;
    use crate::AccessSize;

    fn mem() -> FaultInjector<Sram> {
        let mut m = Sram::new(0x100);
        for a in (0..0x100u32).step_by(4) {
            m.access(&Request::write32(a, 0xA5A5_A5A5), 0).unwrap();
        }
        FaultInjector::new(m)
    }

    #[test]
    fn disarmed_is_passthrough() {
        let mut f = mem();
        let r = f.access(&Request::read32(0x10), 7).unwrap();
        assert_eq!(r.data as u32, 0xA5A5_A5A5);
        assert_eq!(f.stats(), FaultStats::default());
        assert_eq!(f.access, 0, "disarmed shim must not even count");
    }

    #[test]
    fn scheduled_faults_fire_at_exact_indices() {
        let mut f = mem();
        f.arm(
            FaultPlan::default()
                .at(1, FaultKind::ErrorResponse)
                .at(2, FaultKind::BitFlip { mask: 0xFF })
                .at(3, FaultKind::LatencySpike { cycles: 1000 }),
        );
        assert_eq!(
            f.access(&Request::read32(0x0), 0).unwrap().data as u32,
            0xA5A5_A5A5
        );
        let e = f.access(&Request::read32(0x4), 0).unwrap_err();
        assert_eq!(
            e,
            BusError::Injected {
                addr: 0x4,
                access: 1
            }
        );
        let flipped = f.access(&Request::read32(0x8), 0).unwrap();
        assert_eq!(flipped.data as u32, 0xA5A5_A55A);
        let slow = f.access(&Request::read32(0xC), 0).unwrap();
        assert!(slow.done_at >= 1000);
        assert_eq!(
            f.stats(),
            FaultStats {
                accesses: 4,
                flips: 1,
                errors: 1,
                spikes: 1
            }
        );
    }

    #[test]
    fn probabilistic_stream_is_deterministic_and_seed_sensitive() {
        let run = |seed: u64| {
            let mut f = mem();
            f.arm(FaultPlan {
                seed,
                flip_per_million: 50_000,
                error_per_million: 50_000,
                spike_per_million: 50_000,
                spike_cycles: 100,
                schedule: vec![],
            });
            let mut log = Vec::new();
            for i in 0..2000u32 {
                let r = f.access(&Request::read32((i % 64) * 4), 0);
                log.push(r.is_err());
            }
            (log, f.stats())
        };
        let (a1, s1) = run(7);
        let (a2, s2) = run(7);
        assert_eq!(a1, a2);
        assert_eq!(s1, s2);
        assert!(s1.total() > 0, "15% composite rate must fire in 2000 draws");
        let (b1, sb) = run(8);
        assert!(
            a1 != b1 || s1 != sb,
            "a different seed must move the faults"
        );
    }

    #[test]
    fn rates_land_near_the_requested_per_million() {
        let mut f = mem();
        f.arm(FaultPlan {
            seed: 42,
            error_per_million: 100_000, // 10%
            ..FaultPlan::default()
        });
        let n = 10_000u64;
        for i in 0..n {
            let _ = f.access(&Request::read32(((i % 64) * 4) as u32), 0);
        }
        let rate = f.stats().errors as f64 / n as f64;
        assert!((0.08..0.12).contains(&rate), "10% requested, got {rate}");
    }

    #[test]
    fn flips_do_not_touch_writes_and_leases_vanish_when_armed() {
        let mut f = mem();
        assert!(
            f.read_lease(0x10, 0).is_none(),
            "sram offers no lease anyway"
        );
        f.arm(FaultPlan::default().at(0, FaultKind::BitFlip { mask: 0xFF }));
        // Access #0 is a write: the flip must not corrupt stored data.
        f.access(&Request::write32(0x10, 0x1234_5678), 0).unwrap();
        assert!(f.read_lease(0x10, 0).is_none());
        let r = f.access(&Request::read32(0x10), 1).unwrap();
        assert_eq!(r.data as u32, 0x1234_5678);
        assert_eq!(f.stats().flips, 0);
    }

    #[test]
    fn block_ops_fault_too() {
        let mut f = mem();
        f.arm(
            FaultPlan::default()
                .at(0, FaultKind::ErrorResponse)
                .at(2, FaultKind::LatencySpike { cycles: 500 }),
        );
        let mut buf = [0u8; 16];
        let e = f.read_block(0x0, &mut buf, 0).unwrap_err();
        assert!(matches!(e, BusError::Injected { access: 0, .. }));
        let clean = f.read_block(0x0, &mut buf, 0).unwrap();
        assert_eq!(buf, [0xA5; 16]);
        let slow = f.write_block(0x0, &buf, 0).unwrap();
        assert!(slow >= clean + 500 - 16, "spike must stretch the burst");
    }

    #[test]
    fn reset_preserves_the_fault_stream() {
        let mut f = mem();
        f.arm(FaultPlan::default().at(1, FaultKind::ErrorResponse));
        f.access(&Request::read32(0x0), 0).unwrap();
        f.reset();
        assert_eq!(f.access, 1, "counter survives reset by contract");
        let e = f.access(&Request::read32(0x0), 0).unwrap_err();
        assert!(matches!(e, BusError::Injected { access: 1, .. }));
    }

    #[test]
    fn quiet_plan_counts_but_never_fires() {
        let mut f = mem();
        f.arm(FaultPlan::quiet(9));
        assert!(f.plan().unwrap().is_quiet());
        for i in 0..100u32 {
            f.access(&Request::read32((i % 64) * 4), 0).unwrap();
        }
        assert_eq!(f.stats().accesses, 100);
        assert_eq!(f.stats().total(), 0);
    }

    #[test]
    fn size_masked_flip_never_widens_a_narrow_read() {
        let mut f = mem();
        f.arm(FaultPlan::default().at(0, FaultKind::BitFlip { mask: !0 }));
        let r = f.access(&Request::read(0x10, AccessSize::Byte), 0).unwrap();
        assert!(
            r.data <= 0xFF,
            "flipped byte read must stay a byte: {:#x}",
            r.data
        );
    }
}
