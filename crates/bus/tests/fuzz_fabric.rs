//! Fuzz-style fabric tests: seeded random bus programs over the SoC's
//! composed DRAM path — `Arbiter<ClockCrossing<SmartConnect<
//! FaultInjector<Dram>>>>`, plus the 64→32 `WidthConverter` in front —
//! must never panic, must fail only with typed [`BusError`]s whose
//! payloads are predictable from the harness's own mirror model, and
//! must keep the fabric's books balanced: arbiter grants equal issued
//! transactions, arbiter bytes equal successfully moved bytes, DRAM's
//! access/burst counters equal the successes that reached it, and the
//! fault injector's error counter equals the `Injected` rejections the
//! master actually observed.
//!
//! Three programs, mirroring the ISS fuzz suite in
//! `crates/riscv/tests/fuzz_decode_execute.rs`:
//!
//! * a **quiet** program (no fault plan) that also shadows DRAM contents
//!   byte-for-byte, so every read is checked against a host-side model;
//! * a **chaos** program with an armed [`FaultPlan`], random side
//!   switches, disarm/rearm and board resets — here data can be flipped
//!   by design, so the invariants are typed-errors-only, monotonic
//!   completion times and fault-ledger conservation;
//! * a **width-converter** program driving wide (64-bit) beats through
//!   the splitter over the same path.
//!
//! Every program is replayed from its seed and must produce a
//! bit-identical event fingerprint — the fabric analogue of the serve
//! layer's replay-divergence-0 contract. Interesting cases found while
//! fuzzing are promoted to named regression tests at the bottom; the
//! wide-beat address-overflow panic was found exactly this way.

use rvnv_bus::arbiter::Arbiter;
use rvnv_bus::cdc::ClockCrossing;
use rvnv_bus::dram::{Dram, DramTiming};
use rvnv_bus::fault::{mix64, FaultInjector, FaultKind, FaultPlan};
use rvnv_bus::smartconnect::{Side, SmartConnect};
use rvnv_bus::width::WidthConverter;
use rvnv_bus::{AccessSize, BusError, Cycle, MasterId, Request, Reset, Target};
use rvnv_util::SplitMix64;

/// Seeded stream generator over the shared SplitMix64 core, with the
/// domain helpers this suite wants.
struct Rng(SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(SplitMix64::new(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.below(n)
    }

    fn master(&mut self) -> MasterId {
        match self.below(10) {
            0..=4 => MasterId::Cpu,
            5..=8 => MasterId::NvdlaDbb,
            _ => MasterId::ZynqPs,
        }
    }

    fn size(&mut self) -> AccessSize {
        match self.below(4) {
            0 => AccessSize::Byte,
            1 => AccessSize::Half,
            2 => AccessSize::Word,
            _ => AccessSize::Double,
        }
    }
}

const DRAM_BYTES: usize = 1 << 20;

/// The SoC's DRAM path exactly as `rvnv_soc` composes it (minus the
/// `Shared` wrapper, irrelevant single-threaded).
type DramPath = Arbiter<ClockCrossing<SmartConnect<FaultInjector<Dram>>>>;

fn build_path(master_hz: u64, mem_hz: u64) -> DramPath {
    let dram = Dram::new(DRAM_BYTES, DramTiming::mig_ddr4());
    let mux = SmartConnect::new(FaultInjector::new(dram));
    Arbiter::new(ClockCrossing::new(mux, master_hz, mem_hz, 2))
}

fn mux_of(path: &mut DramPath) -> &mut SmartConnect<FaultInjector<Dram>> {
    path.downstream_mut().downstream_mut()
}

fn side_of(master: MasterId) -> Side {
    match master {
        MasterId::ZynqPs => Side::ZynqPs,
        MasterId::Cpu | MasterId::NvdlaDbb => Side::Soc,
    }
}

fn master_index(master: MasterId) -> usize {
    match master {
        MasterId::Cpu => 0,
        MasterId::NvdlaDbb => 1,
        MasterId::ZynqPs => 2,
    }
}

const MASTERS: [MasterId; 3] = [MasterId::Cpu, MasterId::NvdlaDbb, MasterId::ZynqPs];

/// What the harness's mirror model predicts for one transaction. The
/// checks run in fabric order: the SmartConnect gates single beats on
/// ownership, then DRAM checks alignment, then range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Expect {
    Ok,
    WrongSide,
    Misaligned(u32),
    OutOfRange,
}

fn classify_single(owner: Side, master: MasterId, addr: u32, size: AccessSize) -> Expect {
    let n = size.bytes();
    if side_of(master) != owner {
        Expect::WrongSide
    } else if !addr.is_multiple_of(n) {
        Expect::Misaligned(n)
    } else if addr as usize + n as usize > DRAM_BYTES {
        Expect::OutOfRange
    } else {
        Expect::Ok
    }
}

/// Assert an error is the typed variant the mirror predicted, with the
/// payload a recovery layer would need (true device size, required
/// alignment, offending address).
fn check_error(expect: Expect, addr: u32, err: &BusError) {
    match (expect, err) {
        (Expect::WrongSide, BusError::SlaveError { addr: a, .. }) => assert_eq!(*a, addr),
        (Expect::Misaligned(n), BusError::Misaligned { addr: a, align }) => {
            assert_eq!((*a, *align), (addr, n));
        }
        (Expect::OutOfRange, BusError::OutOfRange { size, .. }) => assert_eq!(*size, DRAM_BYTES),
        _ => panic!("mirror predicted {expect:?} at {addr:#x}, fabric returned {err}"),
    }
}

/// Host-side mirror of everything the program should be able to predict.
struct Mirror {
    shadow: Vec<u8>,
    owner: Side,
    attempts: [u64; 3],
    ok_bytes: [u64; 3],
    singles_ok: u64,
    bursts_ok: u64,
}

impl Mirror {
    fn new(owner: Side) -> Self {
        Mirror {
            shadow: vec![0; DRAM_BYTES],
            owner,
            attempts: [0; 3],
            ok_bytes: [0; 3],
            singles_ok: 0,
            bursts_ok: 0,
        }
    }

    /// Board reset: DRAM zeroes, the mux hands ownership back to the
    /// PS, and the arbiter/DRAM statistics restart from zero.
    fn board_reset(&mut self) {
        self.shadow.fill(0);
        self.owner = Side::ZynqPs;
        self.attempts = [0; 3];
        self.ok_bytes = [0; 3];
        self.singles_ok = 0;
        self.bursts_ok = 0;
    }
}

/// Compare the fabric's counters against the mirror at program end.
fn check_conservation(path: &mut DramPath, m: &Mirror) {
    for master in MASTERS {
        let s = path.port_stats(master);
        let i = master_index(master);
        assert_eq!(s.grants, m.attempts[i], "grants ≠ attempts for {master:?}");
        assert_eq!(s.bytes, m.ok_bytes[i], "bytes ≠ moved bytes for {master:?}");
    }
    let dram = mux_of(path).dram_mut().inner().stats();
    assert_eq!(dram.accesses, m.singles_ok, "DRAM beats ≠ successful beats");
    assert_eq!(dram.bursts, m.bursts_ok, "DRAM bursts ≠ successful bursts");
}

/// One seeded quiet program. Returns an event fingerprint (all data and
/// completion times folded through [`mix64`]) for replay comparison.
fn quiet_program(seed: u64, ops: usize) -> u64 {
    let mut rng = Rng::new(seed);
    let mut path = build_path(100_000_000, 100_000_000);
    mux_of(&mut path).switch_to(Side::Soc);
    let mut m = Mirror::new(Side::Soc);
    let mut now: Cycle = 0;
    let mut fp = seed;
    for _ in 0..ops {
        match rng.below(100) {
            0..=54 => {
                // Single beat, occasionally at a hostile address.
                let master = rng.master();
                let size = rng.size();
                let n = size.bytes();
                let addr = if rng.below(8) == 0 {
                    rng.next() as u32 % (2 * DRAM_BYTES as u32)
                } else {
                    (rng.next() as u32 % (DRAM_BYTES as u32 - 8)) & !(n - 1)
                };
                let data = rng.next();
                let req = if rng.below(2) == 0 {
                    Request::read(addr, size)
                } else {
                    Request::write(addr, data, size)
                }
                .with_master(master);
                let expect = classify_single(m.owner, master, addr, size);
                m.attempts[master_index(master)] += 1;
                match path.access(&req, now) {
                    Ok(resp) => {
                        assert_eq!(expect, Expect::Ok, "unexpected success at {addr:#x}");
                        assert!(resp.done_at >= now, "time ran backwards");
                        let o = addr as usize;
                        let n = n as usize;
                        if req.is_write() {
                            m.shadow[o..o + n].copy_from_slice(&data.to_le_bytes()[..n]);
                        } else {
                            let mut want = [0u8; 8];
                            want[..n].copy_from_slice(&m.shadow[o..o + n]);
                            assert_eq!(
                                resp.data,
                                u64::from_le_bytes(want),
                                "read at {addr:#x} diverged from the shadow model"
                            );
                        }
                        m.ok_bytes[master_index(master)] += n as u64;
                        m.singles_ok += 1;
                        fp = mix64(fp ^ resp.done_at ^ resp.data.rotate_left(17));
                        now = resp.done_at + rng.below(4);
                    }
                    Err(e) => {
                        check_error(expect, addr, &e);
                        fp = mix64(fp ^ addr as u64);
                    }
                }
            }
            55..=79 => {
                // Burst via the explicit-master arbiter ports. Bursts
                // bypass the ownership gate (the SoC switches the mux
                // before streaming), so only range can fail.
                let master = rng.master();
                let len = if rng.below(32) == 0 {
                    0
                } else {
                    1 + rng.below(512) as usize
                };
                let addr = if rng.below(8) == 0 {
                    rng.next() as u32 % (2 * DRAM_BYTES as u32)
                } else {
                    rng.next() as u32 % (DRAM_BYTES as u32 - 600)
                };
                let in_range = addr as usize + len <= DRAM_BYTES;
                m.attempts[master_index(master)] += 1;
                let result = if rng.below(2) == 0 {
                    let mut buf = vec![0u8; len];
                    let r = path.read_block_as(master, addr, &mut buf, now);
                    if r.is_ok() {
                        assert_eq!(
                            buf,
                            &m.shadow[addr as usize..addr as usize + len],
                            "burst read at {addr:#x} diverged from the shadow model"
                        );
                    }
                    r
                } else {
                    let buf: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
                    let r = path.write_block_as(master, addr, &buf, now);
                    if r.is_ok() {
                        m.shadow[addr as usize..addr as usize + len].copy_from_slice(&buf);
                    }
                    r
                };
                match result {
                    Ok(done) => {
                        assert!(in_range, "out-of-range burst at {addr:#x}+{len} succeeded");
                        assert!(done >= now, "time ran backwards");
                        m.ok_bytes[master_index(master)] += len as u64;
                        m.bursts_ok += 1;
                        fp = mix64(fp ^ done);
                        now = done + rng.below(4);
                    }
                    Err(e) => {
                        assert!(!in_range, "in-range burst at {addr:#x}+{len} failed: {e}");
                        check_error(Expect::OutOfRange, addr, &e);
                        fp = mix64(fp ^ addr as u64);
                    }
                }
            }
            80..=89 => {
                let side = if rng.below(2) == 0 {
                    Side::Soc
                } else {
                    Side::ZynqPs
                };
                mux_of(&mut path).switch_to(side);
                m.owner = side;
            }
            90..=92 => {
                path.reset();
                m.board_reset();
                // Modeled time is the master's clock; it does not rewind.
            }
            _ => now += rng.below(16),
        }
    }
    check_conservation(&mut path, &m);
    fp
}

/// One seeded chaos program: an armed fault plan, disarm/rearm, board
/// resets, a fast-master/slow-memory clock ratio, and hostile addresses
/// all at once. Data integrity is off the table by design (bit flips);
/// what must hold is: no panic, typed errors only, monotonic completion
/// and an exactly balanced fault ledger.
fn chaos_program(seed: u64, ops: usize) -> u64 {
    let mut rng = Rng::new(seed);
    let mut path = build_path(300_000_000, 100_000_000);
    mux_of(&mut path).switch_to(Side::Soc);
    let mut owner = Side::Soc;
    let mut plan = FaultPlan::quiet(seed);
    plan.flip_per_million = 60_000;
    plan.error_per_million = 60_000;
    plan.spike_per_million = 40_000;
    plan.spike_cycles = 500 + rng.below(2_000);
    let plan = plan
        .at(3, FaultKind::ErrorResponse)
        .at(11, FaultKind::BitFlip { mask: 0xFF })
        .at(23, FaultKind::LatencySpike { cycles: 1_234 });
    mux_of(&mut path).dram_mut().arm(plan.clone());
    let mut armed = true;
    // Accesses that reach the injector while a plan is armed, and the
    // `Injected` rejections the master observed. The injector sits
    // between the mux and DRAM: wrong-side beats never reach it; bursts
    // and in-side beats (even misaligned/out-of-range ones) always do.
    let mut reached: u64 = 0;
    let mut injected_seen: u64 = 0;
    let mut now: Cycle = 0;
    let mut fp = seed;
    for _ in 0..ops {
        match rng.below(100) {
            0..=59 => {
                let master = rng.master();
                let size = rng.size();
                let addr = rng.next() as u32 % (2 * DRAM_BYTES as u32);
                let req = if rng.below(2) == 0 {
                    Request::read(addr, size)
                } else {
                    Request::write(addr, rng.next(), size)
                }
                .with_master(master);
                if armed && side_of(master) == owner {
                    reached += 1;
                }
                match path.access(&req, now) {
                    Ok(resp) => {
                        assert!(resp.done_at >= now, "time ran backwards");
                        fp = mix64(fp ^ resp.done_at ^ resp.data);
                        now = resp.done_at + rng.below(4);
                    }
                    Err(e) => {
                        if let BusError::Injected { addr: a, .. } = e {
                            assert_eq!(a, addr);
                            injected_seen += 1;
                        }
                        fp = mix64(fp ^ addr as u64 ^ injected_seen);
                    }
                }
            }
            60..=79 => {
                let len = 1 + rng.below(256) as usize;
                let addr = rng.next() as u32 % (2 * DRAM_BYTES as u32);
                if armed {
                    reached += 1;
                }
                let mut buf = vec![0u8; len];
                let result = if rng.below(2) == 0 {
                    path.read_block_as(rng.master(), addr, &mut buf, now)
                } else {
                    path.write_block_as(rng.master(), addr, &buf, now)
                };
                match result {
                    Ok(done) => {
                        assert!(done >= now, "time ran backwards");
                        fp = mix64(fp ^ done);
                        now = done + rng.below(4);
                    }
                    Err(e) => {
                        if let BusError::Injected { addr: a, .. } = e {
                            assert_eq!(a, addr);
                            injected_seen += 1;
                        }
                        fp = mix64(fp ^ addr as u64);
                    }
                }
            }
            80..=86 => {
                let side = if rng.below(2) == 0 {
                    Side::Soc
                } else {
                    Side::ZynqPs
                };
                mux_of(&mut path).switch_to(side);
                owner = side;
            }
            87..=91 => {
                // Toggle the chaos plan mid-program. Re-arming restarts
                // the injector's access counter and statistics (the
                // stream is reproducible from the arm point), so the
                // mirror ledger restarts with it.
                if armed {
                    mux_of(&mut path).dram_mut().disarm();
                } else {
                    mux_of(&mut path).dram_mut().arm(plan.clone());
                    reached = 0;
                    injected_seen = 0;
                }
                armed = !armed;
            }
            92..=94 => {
                // Board reset. The fault stream survives by contract
                // (the plan, counter and stats are harness state, not
                // device state), so the ledger keeps accumulating.
                path.reset();
                owner = Side::ZynqPs;
            }
            _ => now += rng.below(16),
        }
    }
    let stats = mux_of(&mut path).dram_mut().stats();
    assert_eq!(
        stats.accesses, reached,
        "injector saw a different access count"
    );
    assert_eq!(
        stats.errors, injected_seen,
        "injected errors ≠ Injected rejections observed by the master"
    );
    assert!(stats.total() <= stats.accesses, "more faults than accesses");
    fp = mix64(fp ^ stats.flips ^ stats.spikes.rotate_left(32));
    fp
}

/// One seeded program through the 64→32 width converter in front of the
/// full path — wide beats split into narrow beats, quiet fabric, shadow
/// data checks. Addresses are kept clear of the last 8 bytes of DRAM so
/// a split beat either fully succeeds or fails on its first sub-beat
/// (a torn wide beat at the device edge is faithful AXI behavior, but
/// it would desynchronize a byte-exact shadow).
fn width_program(seed: u64, ops: usize) -> u64 {
    let mut rng = Rng::new(seed);
    let mut wc = WidthConverter::new(build_path(100_000_000, 100_000_000), 8, 4);
    mux_of(wc.downstream_mut()).switch_to(Side::Soc);
    let mut shadow = vec![0u8; DRAM_BYTES];
    let mut doubles = 0u64;
    let mut now: Cycle = 0;
    let mut fp = seed;
    for _ in 0..ops {
        let size = rng.size();
        let n = size.bytes();
        let hostile = rng.below(8) == 0;
        let addr = if hostile {
            // Either far out of range (aligned) or misaligned in range.
            if rng.below(2) == 0 {
                (DRAM_BYTES as u32 + (rng.next() as u32 % DRAM_BYTES as u32)) & !(n - 1)
            } else {
                (rng.next() as u32 % (DRAM_BYTES as u32 - 8)) | 1
            }
        } else {
            (rng.next() as u32 % (DRAM_BYTES as u32 - 16)) & !(n - 1)
        };
        // Behind the converter a Double splits into two Words, so its
        // effective alignment requirement is the narrow width (4).
        let align = n.min(4);
        let expect = if !addr.is_multiple_of(align) {
            Expect::Misaligned(align)
        } else if addr as usize + n as usize > DRAM_BYTES {
            Expect::OutOfRange
        } else {
            Expect::Ok
        };
        if size == AccessSize::Double {
            doubles += 1;
        }
        let data = rng.next();
        let req = if rng.below(2) == 0 {
            Request::read(addr, size)
        } else {
            Request::write(addr, data, size)
        };
        match wc.access(&req, now) {
            Ok(resp) => {
                assert_eq!(expect, Expect::Ok, "unexpected success at {addr:#x}");
                assert!(resp.done_at >= now, "time ran backwards");
                let (o, n) = (addr as usize, n as usize);
                if req.is_write() {
                    shadow[o..o + n].copy_from_slice(&data.to_le_bytes()[..n]);
                } else {
                    let mut want = [0u8; 8];
                    want[..n].copy_from_slice(&shadow[o..o + n]);
                    assert_eq!(
                        resp.data,
                        u64::from_le_bytes(want),
                        "read at {addr:#x} diverged behind the width converter"
                    );
                }
                fp = mix64(fp ^ resp.done_at ^ resp.data);
                now = resp.done_at + rng.below(4);
            }
            Err(e) => {
                check_error(expect, addr, &e);
                fp = mix64(fp ^ addr as u64);
            }
        }
    }
    assert_eq!(
        wc.beats_split(),
        doubles,
        "split counter ≠ wide beats issued"
    );
    fp
}

#[test]
fn fuzz_quiet_fabric_round_trips_and_conserves_stats() {
    for seed in 1..=24 {
        quiet_program(seed, 400);
    }
}

#[test]
fn fuzz_quiet_fabric_replays_bit_identically() {
    for seed in [1, 7, 42, 0xFEED] {
        assert_eq!(quiet_program(seed, 300), quiet_program(seed, 300));
    }
}

#[test]
fn fuzz_chaos_fabric_fails_only_with_typed_errors_and_balanced_ledgers() {
    for seed in 1..=24 {
        chaos_program(seed, 400);
    }
}

#[test]
fn fuzz_chaos_fabric_replays_bit_identically() {
    for seed in [3, 9, 0xC0FFEE] {
        assert_eq!(chaos_program(seed, 300), chaos_program(seed, 300));
    }
}

#[test]
fn fuzz_width_converter_splits_without_losing_data() {
    for seed in 1..=16 {
        width_program(seed, 300);
    }
}

// ---------------------------------------------------------------------
// Named regressions — counterexamples found while fuzzing, pinned so
// they never regress silently whatever the seeds above do later.
// ---------------------------------------------------------------------

/// Found by `width_program`: `WidthConverter::access` computed sub-beat
/// addresses with unchecked `+`, so a wide beat at the very top of the
/// 32-bit space panicked (debug overflow) instead of surfacing the
/// downstream's typed rejection. Now it wraps like the generic block
/// walk and the device underneath reports out-of-range.
#[test]
fn regression_wide_beat_at_the_top_of_the_address_space_is_rejected_not_a_panic() {
    let mut wc = WidthConverter::new(Dram::new(64 << 10, DramTiming::mig_ddr4()), 8, 4);
    let err = wc
        .access(&Request::read(0xFFFF_FFF8, AccessSize::Double), 0)
        .unwrap_err();
    assert!(matches!(err, BusError::OutOfRange { .. }), "got {err}");
}

/// A single beat from the side that does not own the SmartConnect is a
/// typed rejection that names the offending address — and the arbiter
/// still counts the grant (the master did win the bus; the mux said no),
/// which is exactly the accounting the fuzz mirror relies on.
#[test]
fn regression_wrong_side_single_beat_is_a_typed_rejection() {
    let mut path = build_path(100_000_000, 100_000_000);
    // Board-reset state: the PS owns DRAM, so the CPU bounces.
    let err = path.access(&Request::read32(0x100), 0).unwrap_err();
    assert!(
        matches!(err, BusError::SlaveError { addr: 0x100, .. }),
        "got {err}"
    );
    assert_eq!(mux_of(&mut path).rejected(), 1);
    assert_eq!(path.port_stats(MasterId::Cpu).grants, 1);
    assert_eq!(path.port_stats(MasterId::Cpu).bytes, 0);
}

/// An out-of-range burst reports the true device size, so a recovery
/// layer can tell "bad pointer" from "model too small".
#[test]
fn regression_out_of_range_burst_reports_the_true_device_size() {
    let mut path = build_path(100_000_000, 100_000_000);
    let mut buf = [0u8; 64];
    let err = path
        .read_block_as(MasterId::NvdlaDbb, DRAM_BYTES as u32 - 32, &mut buf, 0)
        .unwrap_err();
    match err {
        BusError::OutOfRange { size, len, .. } => {
            assert_eq!(size, DRAM_BYTES);
            assert_eq!(len, 64);
        }
        other => panic!("expected OutOfRange, got {other}"),
    }
}

/// A zero-length burst is a harmless no-op, not a panic or a phantom
/// transfer: it completes, moves zero bytes, and never goes backwards
/// in time.
#[test]
fn regression_zero_length_burst_is_harmless() {
    let mut path = build_path(100_000_000, 100_000_000);
    mux_of(&mut path).switch_to(Side::Soc);
    let done = path
        .write_block_as(MasterId::ZynqPs, 0x40, &[], 17)
        .unwrap();
    assert!(done >= 17);
    assert_eq!(path.port_stats(MasterId::ZynqPs).bytes, 0);
}

/// Behavioral pin, not a bug: a 64-bit beat at a 4-but-not-8-aligned
/// address is `Misaligned` on the bare DRAM port but **succeeds** behind
/// the 64→32 converter, because the converter legally re-expresses it as
/// two aligned 32-bit beats. Both behaviors are correct; the difference
/// is load-bearing for anyone moving the converter in the topology.
#[test]
fn regression_misaligned_double_is_legal_behind_the_converter_only() {
    let mut bare = Dram::new(64 << 10, DramTiming::mig_ddr4());
    let err = bare
        .access(
            &Request::write(0x14, 0xAABB_CCDD_1122_3344, AccessSize::Double),
            0,
        )
        .unwrap_err();
    assert!(
        matches!(err, BusError::Misaligned { align: 8, .. }),
        "got {err}"
    );

    let mut wc = WidthConverter::new(Dram::new(64 << 10, DramTiming::mig_ddr4()), 8, 4);
    wc.access(
        &Request::write(0x14, 0xAABB_CCDD_1122_3344, AccessSize::Double),
        0,
    )
    .unwrap();
    let read = wc
        .access(&Request::read(0x14, AccessSize::Double), 100)
        .unwrap();
    assert_eq!(read.data, 0xAABB_CCDD_1122_3344);
}

/// The fault injector's ledger survives a board reset by contract (the
/// plan is harness state, not device state), while the device under it
/// comes back fresh — the exact property the chaos fuzz mirror assumes.
#[test]
fn regression_fault_stream_survives_board_reset() {
    let mut path = build_path(100_000_000, 100_000_000);
    mux_of(&mut path).switch_to(Side::Soc);
    let plan = FaultPlan::quiet(1).at(0, FaultKind::ErrorResponse);
    mux_of(&mut path).dram_mut().arm(plan);
    let err = path.access(&Request::read32(0), 0).unwrap_err();
    assert!(matches!(err, BusError::Injected { access: 0, .. }));
    path.reset();
    assert_eq!(mux_of(&mut path).dram_mut().stats().errors, 1);
    assert!(mux_of(&mut path).dram_mut().plan().is_some());
    // The scheduled access index was consumed; the next access is clean
    // (access #1), and the reset device serves it from zeroed contents.
    mux_of(&mut path).switch_to(Side::Soc);
    let resp = path.access(&Request::read32(0), 0).unwrap();
    assert_eq!(resp.data, 0);
}

/// Promoted from `rv-nvdla fuzz bus` (the planted-mutation shakedown,
/// base seed 0): shrinking reduced a mispredicted program to a single
/// 8-byte read at `0x1cbc6a` on a 1 MiB DRAM — an address that is both
/// misaligned *and* out of range. The fabric checks alignment before
/// range, so the typed error must be `Misaligned`, never `OutOfRange`;
/// any mirror predicting in the other order is wrong.
#[test]
fn regression_alignment_outranks_range_in_error_precedence() {
    let mut dram = Dram::new(1 << 20, DramTiming::mig_ddr4());
    let err = dram
        .access(&Request::read(0x001c_bc6a, AccessSize::Double), 0)
        .unwrap_err();
    assert!(
        matches!(
            err,
            BusError::Misaligned {
                addr: 0x001c_bc6a,
                align: 8
            }
        ),
        "want Misaligned before OutOfRange, got {err}"
    );
}
