//! The µRISC-V core: fetch/decode/execute with pipeline timing.

use std::error::Error;
use std::fmt;

use rvnv_bus::ahb::AhbPort;
use rvnv_bus::{AccessSize, BusError, Request, Target};

use crate::csr::CsrFile;
use crate::decode::{decode, DecodeError};
use crate::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use crate::pipeline::{Pipeline, PipelineModel, PipelineStats};
use crate::reg::{Reg, RegFile};

/// Why [`Core::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `ebreak` retired — the firmware's completion marker.
    Ebreak,
    /// `ecall` retired.
    Ecall,
    /// `wfi` retired with no interrupt source modeled.
    Wfi,
    /// The instruction budget was exhausted.
    MaxInstructions,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Ebreak => write!(f, "ebreak"),
            StopReason::Ecall => write!(f, "ecall"),
            StopReason::Wfi => write!(f, "wfi"),
            StopReason::MaxInstructions => write!(f, "instruction budget exhausted"),
        }
    }
}

/// Execution failure (bad fetch, illegal instruction, bus fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Instruction fetch failed.
    FetchFault {
        /// Faulting PC.
        pc: u32,
        /// Underlying bus error.
        source: BusError,
    },
    /// Illegal/unsupported instruction.
    Illegal(DecodeError),
    /// Data access failed.
    DataFault {
        /// PC of the faulting load/store.
        pc: u32,
        /// Data address.
        addr: u32,
        /// Underlying bus error.
        source: BusError,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::FetchFault { pc, source } => {
                write!(f, "instruction fetch fault at pc {pc:#010x}: {source}")
            }
            CpuError::Illegal(e) => write!(f, "{e}"),
            CpuError::DataFault { pc, addr, source } => write!(
                f,
                "data access fault at pc {pc:#010x}, address {addr:#010x}: {source}"
            ),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::FetchFault { source, .. } | CpuError::DataFault { source, .. } => {
                Some(source)
            }
            CpuError::Illegal(e) => Some(e),
        }
    }
}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> Self {
        CpuError::Illegal(e)
    }
}

/// The µRISC-V core with separate instruction and data ports.
///
/// `I` is the program memory (block RAM in the paper), `D` the system
/// bus through which both the NVDLA CSB window and the DRAM are reached.
#[derive(Debug)]
pub struct Core<I, D> {
    imem: AhbPort<I>,
    dmem: AhbPort<D>,
    pc: u32,
    regs: RegFile,
    csrs: CsrFile,
    pipeline: Pipeline,
    cycle: u64,
    retired: u64,
}

impl<I: Target, D: Target> Core<I, D> {
    /// Create a core with PC at 0 and the default pipeline model.
    pub fn new(imem: I, dmem: D) -> Self {
        Self::with_model(imem, dmem, PipelineModel::micro_riscv())
    }

    /// Create a core with an explicit pipeline timing model.
    pub fn with_model(imem: I, dmem: D, model: PipelineModel) -> Self {
        Core {
            imem: AhbPort::new(imem),
            dmem: AhbPort::new(dmem),
            pc: 0,
            regs: RegFile::new(),
            csrs: CsrFile::new(),
            pipeline: Pipeline::new(model),
            cycle: 0,
            retired: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Set the program counter (reset vector).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Current core-clock cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advance the core clock without executing instructions — the
    /// platform uses this to model a `wfi` sleep until a wake event
    /// (e.g. the NVDLA interrupt). No-op if `to` is in the past.
    pub fn advance_cycle(&mut self, to: u64) {
        self.cycle = self.cycle.max(to);
    }

    /// Retired instruction count.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Read an architectural register.
    #[must_use]
    pub fn read_reg(&self, r: Reg) -> u32 {
        self.regs.read(r)
    }

    /// Write an architectural register.
    pub fn write_reg(&mut self, r: Reg, value: u32) {
        self.regs.write(r, value);
    }

    /// Pipeline statistics.
    #[must_use]
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// The data port (backdoor, e.g. for inspecting the bus).
    pub fn dmem_mut(&mut self) -> &mut D {
        self.dmem.downstream_mut()
    }

    /// The instruction memory (backdoor, e.g. for loading firmware).
    pub fn imem_mut(&mut self) -> &mut I {
        self.imem.downstream_mut()
    }

    fn data_access(
        &mut self,
        addr: u32,
        width: MemWidth,
        write: Option<u32>,
    ) -> Result<(u32, u64), CpuError> {
        let size = AccessSize::from_bytes(width.bytes()).expect("mem widths are 1/2/4");
        let req = match write {
            Some(v) => Request::write(addr, u64::from(v), size),
            None => Request::read(addr, size),
        };
        let resp = self
            .dmem
            .access(&req, self.cycle)
            .map_err(|source| CpuError::DataFault {
                pc: self.pc,
                addr,
                source,
            })?;
        let wait = (resp.done_at - self.cycle).saturating_sub(1);
        Ok((resp.data as u32, wait))
    }

    /// Execute one instruction; returns `Some(reason)` if it halted.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on fetch faults, illegal instructions or data
    /// bus faults. The core is left at the faulting PC.
    pub fn step(&mut self) -> Result<Option<StopReason>, CpuError> {
        // IF
        let fetch = self
            .imem
            .access(&Request::read32(self.pc), self.cycle)
            .map_err(|source| CpuError::FetchFault {
                pc: self.pc,
                source,
            })?;
        let fetch_wait = (fetch.done_at - self.cycle).saturating_sub(1);
        let word = fetch.data as u32;

        // ID
        let inst = decode(word, self.pc)?;

        // EX + MEM
        let mut next_pc = self.pc.wrapping_add(4);
        let mut mem_wait = 0u64;
        let mut stop = None;
        match inst {
            Inst::Lui { rd, imm } => self.regs.write(rd, imm),
            Inst::Auipc { rd, imm } => self.regs.write(rd, self.pc.wrapping_add(imm)),
            Inst::Jal { rd, offset } => {
                self.regs.write(rd, next_pc);
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.regs.read(rs1).wrapping_add(offset as u32) & !1;
                self.regs.write(rd, next_pc);
                next_pc = target;
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                let take = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if take {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            Inst::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                let (raw, wait) = self.data_access(addr, width, None)?;
                mem_wait = wait;
                let value = match width {
                    MemWidth::Byte => raw as u8 as i8 as i32 as u32,
                    MemWidth::ByteU => u32::from(raw as u8),
                    MemWidth::Half => raw as u16 as i16 as i32 as u32,
                    MemWidth::HalfU => u32::from(raw as u16),
                    MemWidth::Word => raw,
                };
                self.regs.write(rd, value);
            }
            Inst::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                let value = self.regs.read(rs2);
                let (_, wait) = self.data_access(addr, width, Some(value))?;
                mem_wait = wait;
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let a = self.regs.read(rs1);
                self.regs.write(rd, alu(op, a, imm as u32));
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.write(rd, alu(op, a, b));
            }
            Inst::Mul { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.write(rd, muldiv(op, a, b));
            }
            Inst::Fence => {}
            Inst::Ecall => stop = Some(StopReason::Ecall),
            Inst::Ebreak => stop = Some(StopReason::Ebreak),
            Inst::Wfi => stop = Some(StopReason::Wfi),
            Inst::Mret => {
                next_pc = self.csrs.read(crate::csr::MEPC);
            }
            Inst::Csr { op, rd, rs1, csr } => {
                self.csrs.cycle = self.cycle;
                self.csrs.instret = self.retired;
                let old = self.csrs.read(csr);
                let operand = self.regs.read(rs1);
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs => (rs1 != crate::reg::ZERO).then_some(old | operand),
                    CsrOp::Rc => (rs1 != crate::reg::ZERO).then_some(old & !operand),
                };
                if let Some(v) = new {
                    self.csrs.write(csr, v);
                }
                self.regs.write(rd, old);
            }
            Inst::CsrImm { op, rd, imm, csr } => {
                self.csrs.cycle = self.cycle;
                self.csrs.instret = self.retired;
                let old = self.csrs.read(csr);
                let operand = u32::from(imm);
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs => (imm != 0).then_some(old | operand),
                    CsrOp::Rc => (imm != 0).then_some(old & !operand),
                };
                if let Some(v) = new {
                    self.csrs.write(csr, v);
                }
                self.regs.write(rd, old);
            }
        }

        let taken = next_pc != self.pc.wrapping_add(4);
        self.cycle += self.pipeline.retire(&inst, taken, fetch_wait, mem_wait);
        self.retired += 1;
        self.pc = next_pc;
        Ok(stop)
    }

    /// Run until a halt condition or `max_instructions` retire.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`].
    pub fn run(&mut self, max_instructions: u64) -> Result<StopReason, CpuError> {
        for _ in 0..max_instructions {
            if let Some(stop) = self.step()? {
                return Ok(stop);
            }
        }
        Ok(StopReason::MaxInstructions)
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        MulOp::Mulhsu => ((i64::from(a as i32).wrapping_mul(i64::from(b))) >> 32) as u32,
        MulOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::{A0, A1, T0, T1};
    use rvnv_bus::sram::Sram;

    fn program(insts: &[Inst]) -> Sram {
        let mut bytes = Vec::new();
        for i in insts {
            bytes.extend_from_slice(&encode(i).to_le_bytes());
        }
        Sram::rom(bytes)
    }

    fn run_insts(insts: &[Inst]) -> Core<Sram, Sram> {
        let mut core = Core::new(program(insts), Sram::new(4096));
        core.run(10_000).unwrap();
        core
    }

    #[test]
    fn arithmetic_program() {
        let core = run_insts(&[
            Inst::AluImm {
                op: AluOp::Add,
                rd: A0,
                rs1: crate::reg::ZERO,
                imm: 40,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: A1,
                rs1: crate::reg::ZERO,
                imm: 2,
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: A0,
                rs1: A0,
                rs2: A1,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(A0), 42);
        assert_eq!(core.retired(), 4);
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let core = run_insts(&[
            // a0 = 0x180 (data area), store 0xFFFF_FF80 as byte, load back.
            Inst::AluImm {
                op: AluOp::Add,
                rd: A0,
                rs1: crate::reg::ZERO,
                imm: 0x180,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: crate::reg::ZERO,
                imm: -128,
            },
            Inst::Store {
                width: MemWidth::Byte,
                rs1: A0,
                rs2: T0,
                offset: 0,
            },
            Inst::Load {
                width: MemWidth::Byte,
                rd: T1,
                rs1: A0,
                offset: 0,
            },
            Inst::Load {
                width: MemWidth::ByteU,
                rd: A1,
                rs1: A0,
                offset: 0,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(T1), 0xFFFF_FF80);
        assert_eq!(core.read_reg(A1), 0x80);
    }

    #[test]
    fn loop_counts_and_branches() {
        // t0 = 10; loop: t0--; bne t0, zero, loop; ebreak
        let core = run_insts(&[
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: crate::reg::ZERO,
                imm: 10,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: T0,
                imm: -1,
            },
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: T0,
                rs2: crate::reg::ZERO,
                offset: -4,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(T0), 0);
        assert_eq!(core.retired(), 1 + 2 * 10 + 1);
        // 9 taken branches × penalty 2 are visible in the stats.
        assert_eq!(core.pipeline_stats().branch_stalls, 18);
    }

    #[test]
    fn div_by_zero_follows_spec() {
        let core = run_insts(&[
            Inst::AluImm {
                op: AluOp::Add,
                rd: A0,
                rs1: crate::reg::ZERO,
                imm: 7,
            },
            Inst::Mul {
                op: MulOp::Div,
                rd: A1,
                rs1: A0,
                rs2: crate::reg::ZERO,
            },
            Inst::Mul {
                op: MulOp::Rem,
                rd: T0,
                rs1: A0,
                rs2: crate::reg::ZERO,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(A1), u32::MAX);
        assert_eq!(core.read_reg(T0), 7);
    }

    #[test]
    fn mcycle_csr_reads_advance() {
        let core = run_insts(&[
            Inst::Csr {
                op: CsrOp::Rs,
                rd: A0,
                rs1: crate::reg::ZERO,
                csr: crate::csr::MCYCLE,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: crate::reg::ZERO,
                imm: 1,
            },
            Inst::Csr {
                op: CsrOp::Rs,
                rd: A1,
                rs1: crate::reg::ZERO,
                csr: crate::csr::MCYCLE,
            },
            Inst::Ebreak,
        ]);
        assert!(core.read_reg(A1) > core.read_reg(A0));
    }

    #[test]
    fn fetch_fault_reports_pc() {
        let mut core = Core::new(Sram::rom(vec![0x13, 0, 0, 0]), Sram::new(64));
        core.set_pc(0x1000);
        let e = core.step().unwrap_err();
        assert!(matches!(e, CpuError::FetchFault { pc: 0x1000, .. }));
    }

    #[test]
    fn data_fault_reports_address() {
        let mut core = Core::new(
            program(&[Inst::Load {
                width: MemWidth::Word,
                rd: A0,
                rs1: crate::reg::ZERO,
                offset: 0x7FF,
            }]),
            Sram::new(64),
        );
        let e = core.run(10).unwrap_err();
        assert!(matches!(e, CpuError::DataFault { .. }));
    }

    #[test]
    fn instruction_budget() {
        // Infinite loop: jal zero, 0.
        let mut core = Core::new(
            program(&[Inst::Jal {
                rd: crate::reg::ZERO,
                offset: 0,
            }]),
            Sram::new(64),
        );
        assert_eq!(core.run(100).unwrap(), StopReason::MaxInstructions);
        assert_eq!(core.retired(), 100);
    }

    #[test]
    fn mmio_poll_loop_sees_bus_latency() {
        // Polling DRAM-backed status: cycles per iteration exceed the
        // SRAM-only case because of wait states.
        let prog = [
            Inst::Load {
                width: MemWidth::Word,
                rd: T0,
                rs1: crate::reg::ZERO,
                offset: 0x100,
            },
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: T0,
                rs2: crate::reg::ZERO,
                offset: -4,
            },
            Inst::Ebreak,
        ];
        let mut slow = Core::new(
            program(&prog),
            rvnv_bus::dram::Dram::new(4096, Default::default()),
        );
        // Never becomes nonzero; run a fixed number of instructions.
        slow.run(20).unwrap();
        let mut fast = Core::new(program(&prog), Sram::new(4096));
        fast.run(20).unwrap();
        assert!(slow.cycle() > 2 * fast.cycle());
        assert!(slow.pipeline_stats().mem_stalls > 0);
    }
}
