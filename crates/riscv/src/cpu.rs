//! The µRISC-V core: fetch/decode/execute with pipeline timing.

use std::error::Error;
use std::fmt;

use rvnv_bus::ahb::{AhbPort, AhbStats};
use rvnv_bus::{AccessSize, BusError, Request, Target};

use crate::block_cache::{ends_block, BlockCache, BlockCacheStats, CachedOp};
use crate::csr::CsrFile;
use crate::decode::{decode, DecodeError};
use crate::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use crate::pipeline::{Pipeline, PipelineModel, PipelineStats};
use crate::reg::{Reg, RegFile};

/// Why [`Core::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// `ebreak` retired — the firmware's completion marker.
    Ebreak,
    /// `ecall` retired.
    Ecall,
    /// `wfi` retired with no interrupt source modeled.
    Wfi,
    /// The instruction budget was exhausted.
    MaxInstructions,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::Ebreak => write!(f, "ebreak"),
            StopReason::Ecall => write!(f, "ecall"),
            StopReason::Wfi => write!(f, "wfi"),
            StopReason::MaxInstructions => write!(f, "instruction budget exhausted"),
        }
    }
}

/// Execution failure (bad fetch, illegal instruction, bus fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Instruction fetch failed.
    FetchFault {
        /// Faulting PC.
        pc: u32,
        /// Underlying bus error.
        source: BusError,
    },
    /// Illegal/unsupported instruction.
    Illegal(DecodeError),
    /// Data access failed.
    DataFault {
        /// PC of the faulting load/store.
        pc: u32,
        /// Data address.
        addr: u32,
        /// Underlying bus error.
        source: BusError,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::FetchFault { pc, source } => {
                write!(f, "instruction fetch fault at pc {pc:#010x}: {source}")
            }
            CpuError::Illegal(e) => write!(f, "{e}"),
            CpuError::DataFault { pc, addr, source } => write!(
                f,
                "data access fault at pc {pc:#010x}, address {addr:#010x}: {source}"
            ),
        }
    }
}

impl Error for CpuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CpuError::FetchFault { source, .. } | CpuError::DataFault { source, .. } => {
                Some(source)
            }
            CpuError::Illegal(e) => Some(e),
        }
    }
}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> Self {
        CpuError::Illegal(e)
    }
}

/// The µRISC-V core with separate instruction and data ports.
///
/// `I` is the program memory (block RAM in the paper), `D` the system
/// bus through which both the NVDLA CSB window and the DRAM are reached.
#[derive(Debug)]
pub struct Core<I, D> {
    imem: AhbPort<I>,
    dmem: AhbPort<D>,
    pc: u32,
    regs: RegFile,
    csrs: CsrFile,
    pipeline: Pipeline,
    cycle: u64,
    retired: u64,
    /// Decoded-basic-block cache; `None` runs the plain interpreter.
    cache: Option<BlockCache>,
    /// Replay cursor — `(block index, op index)` of the op at `self.pc`,
    /// when the previous step fell through inside a cached block.
    replay: Option<(u32, u32)>,
    /// PC of the most recent successful instruction fetch. The cached
    /// path bypasses the imem AHB port, so the core mirrors the port's
    /// SEQ/NONSEQ classifier here to keep fetch timing bit-identical.
    last_fetch: Option<u32>,
    /// Active MMIO read lease (see [`Target::read_lease`]): exact
    /// repeats of the previous data read are answered locally, with the
    /// recorded data and wait, while the device's promise holds.
    lease: Option<DmemLease>,
    /// `(addr, is_write)` of the most recent successful data access —
    /// the dmem AHB port's SEQ/NONSEQ classifier state, mirrored so the
    /// lease path can reproduce the port's timing without touching it.
    last_dmem: Option<(u32, bool)>,
    /// Total data reads elided through leases (for stats crediting).
    lease_elided: u64,
}

/// A read lease the core holds on one data address. Only taken in
/// fast-kernels mode (block cache attached); the plain interpreter
/// never consults leases, keeping it the timing reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct DmemLease {
    addr: u32,
    size: AccessSize,
    data: u32,
    /// Wait cycles a (necessarily NONSEQ) repeat read costs.
    wait: u64,
    /// Repeats may be *issued* at cycles strictly before this.
    until: u64,
}

/// Snapshot taken at a fixed phase of a suspected poll loop (right
/// after a lease-elided read retires). If the core returns to this
/// phase with every piece of architectural and timing-relevant state
/// equal — and the whole period touched no bus port, so its only
/// inputs were the (constant) lease and the (static) cached decode —
/// then the period provably repeats bit-identically and can be
/// fast-forwarded by multiplying its deltas.
struct PollAnchor {
    pc: u32,
    cycle: u64,
    retired: u64,
    regs: RegFile,
    csrs: CsrFile,
    pending_load: Option<Reg>,
    replay: Option<(u32, u32)>,
    last_fetch: Option<u32>,
    last_dmem: Option<(u32, bool)>,
    lease: DmemLease,
    pstats: PipelineStats,
    cstats: BlockCacheStats,
    elided: u64,
    imem_stats: AhbStats,
    dmem_stats: AhbStats,
}

impl<I: Target, D: Target> Core<I, D> {
    /// Create a core with PC at 0 and the default pipeline model.
    pub fn new(imem: I, dmem: D) -> Self {
        Self::with_model(imem, dmem, PipelineModel::micro_riscv())
    }

    /// Create a core with an explicit pipeline timing model.
    pub fn with_model(imem: I, dmem: D, model: PipelineModel) -> Self {
        Core {
            imem: AhbPort::new(imem),
            dmem: AhbPort::new(dmem),
            pc: 0,
            regs: RegFile::new(),
            csrs: CsrFile::new(),
            pipeline: Pipeline::new(model),
            cycle: 0,
            retired: 0,
            cache: None,
            replay: None,
            last_fetch: None,
            lease: None,
            last_dmem: None,
            lease_elided: 0,
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Set the program counter (reset vector).
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
        self.replay = None;
    }

    /// Current core-clock cycle.
    #[must_use]
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Advance the core clock without executing instructions — the
    /// platform uses this to model a `wfi` sleep until a wake event
    /// (e.g. the NVDLA interrupt). No-op if `to` is in the past.
    pub fn advance_cycle(&mut self, to: u64) {
        self.cycle = self.cycle.max(to);
    }

    /// Retired instruction count.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Read an architectural register.
    #[must_use]
    pub fn read_reg(&self, r: Reg) -> u32 {
        self.regs.read(r)
    }

    /// Write an architectural register.
    pub fn write_reg(&mut self, r: Reg, value: u32) {
        self.regs.write(r, value);
    }

    /// Pipeline statistics.
    #[must_use]
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.pipeline.stats()
    }

    /// The data port (backdoor, e.g. for inspecting the bus).
    ///
    /// Drops any held MMIO read lease: the caller may mutate device
    /// state behind the leased value.
    pub fn dmem_mut(&mut self) -> &mut D {
        self.lease = None;
        self.dmem.downstream_mut()
    }

    /// The instruction memory (backdoor, e.g. for loading firmware).
    ///
    /// Handing out `&mut` to the program memory conservatively flushes
    /// the decoded-block cache (if one is attached): the caller may be
    /// about to overwrite instruction bytes, and cached blocks must
    /// never outlive the words they were decoded from.
    pub fn imem_mut(&mut self) -> &mut I {
        if let Some(cache) = self.cache.as_mut() {
            cache.flush();
            self.replay = None;
        }
        self.imem.downstream_mut()
    }

    /// Attach a fresh decoded-block cache covering an instruction
    /// memory of `imem_bytes` bytes (see [`BlockCache`]).
    ///
    /// The cache is exact only for instruction memories whose fetch
    /// timing is a pure function of the address (e.g. the block-RAM
    /// [`Sram`](rvnv_bus::sram::Sram) program memory); the latency of
    /// each word is measured once at decode time and replayed after.
    pub fn enable_block_cache(&mut self, imem_bytes: usize) {
        self.attach_block_cache(BlockCache::new(imem_bytes));
    }

    /// Attach an existing (possibly warm) decoded-block cache. The
    /// caller guarantees the instruction memory holds the same bytes
    /// the cache's blocks were decoded from — the SoC keys retained
    /// caches by a hash of the firmware image to enforce this.
    pub fn attach_block_cache(&mut self, cache: BlockCache) {
        self.replay = None;
        self.lease = None;
        self.cache = Some(cache);
    }

    /// Detach and return the decoded-block cache, e.g. to keep it warm
    /// across a core rebuild. Returns `None` if no cache is attached.
    pub fn take_block_cache(&mut self) -> Option<BlockCache> {
        self.replay = None;
        self.lease = None;
        self.cache.take()
    }

    /// Total data reads answered from MMIO read leases (see
    /// [`Target::read_lease`]). These reads are architecturally
    /// performed but never reach the bus fabric, so platform code uses
    /// this to credit device-side read counters.
    #[must_use]
    pub fn elided_mmio_reads(&self) -> u64 {
        self.lease_elided
    }

    /// Counters of the attached decoded-block cache, if any.
    #[must_use]
    pub fn block_cache_stats(&self) -> Option<BlockCacheStats> {
        self.cache.as_ref().map(BlockCache::stats)
    }

    fn data_access(
        &mut self,
        addr: u32,
        width: MemWidth,
        write: Option<u32>,
    ) -> Result<(u32, u64), CpuError> {
        let size = AccessSize::from_bytes(width.bytes()).expect("mem widths are 1/2/4");
        // MMIO read-lease fast path (fast-kernels mode only): an exact
        // repeat of the leased read — the firmware poll loop — replays
        // the recorded data and wait without re-crossing the fabric.
        // Because only *identical consecutive* reads are elided, the
        // dmem AHB port's classifier state stays exactly what a real
        // repeat would leave behind.
        if write.is_none() {
            if let Some(l) = &self.lease {
                if l.addr == addr && l.size == size && self.cycle < l.until {
                    self.lease_elided += 1;
                    return Ok((l.data, l.wait));
                }
            }
        }
        self.lease = None;
        let req = match write {
            Some(v) => Request::write(addr, u64::from(v), size),
            None => Request::read(addr, size),
        };
        let resp = self
            .dmem
            .access(&req, self.cycle)
            .map_err(|source| CpuError::DataFault {
                pc: self.pc,
                addr,
                source,
            })?;
        let wait = (resp.done_at - self.cycle).saturating_sub(1);
        // Mirror the port's SEQ/NONSEQ classification of the access
        // that just happened (the port updates its state only on
        // success, so mirror only on success too).
        let was_seq = matches!(
            self.last_dmem,
            Some((prev, w)) if addr == prev.wrapping_add(size.bytes()) && write.is_some() == w
        );
        self.last_dmem = Some((addr, write.is_some()));
        if self.cache.is_some() && write.is_none() {
            // Ask the slave for a lease on this address. The query is
            // made in port-issue time (`cycle + addr_phase`), and the
            // returned bound is pulled back by the NONSEQ address phase
            // every *repeat* pays, yielding an issue-time deadline.
            let addr_phase = if was_seq {
                0
            } else {
                AhbPort::<D>::NONSEQ_COST
            };
            if let Some(until) = self
                .dmem
                .downstream_mut()
                .read_lease(addr, self.cycle + addr_phase)
            {
                self.lease = Some(DmemLease {
                    addr,
                    size,
                    data: resp.data as u32,
                    // A repeat is NONSEQ (same address twice is never
                    // sequential), so it pays the address phase even if
                    // the leased access itself did not.
                    wait: wait + (AhbPort::<D>::NONSEQ_COST - addr_phase),
                    until: until.saturating_sub(AhbPort::<D>::NONSEQ_COST),
                });
            }
        }
        Ok((resp.data as u32, wait))
    }

    /// Execute one instruction; returns `Some(reason)` if it halted.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on fetch faults, illegal instructions or data
    /// bus faults. The core is left at the faulting PC.
    pub fn step(&mut self) -> Result<Option<StopReason>, CpuError> {
        if self.cache.is_some() {
            self.step_cached()
        } else {
            self.step_uncached()
        }
    }

    /// One fetch/decode/execute step through the imem AHB port — the
    /// reference interpreter the cached path must match bit-for-bit.
    fn step_uncached(&mut self) -> Result<Option<StopReason>, CpuError> {
        // IF
        let fetch = self
            .imem
            .access(&Request::read32(self.pc), self.cycle)
            .map_err(|source| CpuError::FetchFault {
                pc: self.pc,
                source,
            })?;
        let fetch_wait = (fetch.done_at - self.cycle).saturating_sub(1);
        let word = fetch.data as u32;
        // Mirror the port's SEQ/NONSEQ state so a block cache attached
        // mid-run classifies its first fetch the way the port would.
        self.last_fetch = Some(self.pc);

        // ID
        let inst = decode(word, self.pc)?;

        self.execute_inst(inst, fetch_wait)
    }

    /// One step replayed from the decoded-block cache. Execution and
    /// retirement share [`Self::execute_inst`] with the uncached path;
    /// only fetch and decode are elided, with the fetch *timing*
    /// recomputed analytically (build-time slave latency + AHB
    /// address-phase cost from the mirrored SEQ/NONSEQ classifier).
    fn step_cached(&mut self) -> Result<Option<StopReason>, CpuError> {
        let pc = self.pc;
        let (block_idx, op_idx) = match self.replay.take() {
            Some(cursor) => cursor,
            None => {
                let cache = self.cache.as_mut().expect("cached mode");
                if let Some(idx) = cache.lookup(pc) {
                    cache.stats.hits += 1;
                    (idx, 0)
                } else {
                    self.cache.as_mut().expect("cached mode").stats.misses += 1;
                    (self.build_block(pc)?, 0)
                }
            }
        };
        let cache = self.cache.as_mut().expect("cached mode");
        cache.stats.replayed_ops += 1;
        let block = cache.block(block_idx);
        let op = block[op_idx as usize];
        let is_last = op_idx as usize + 1 == block.len();
        debug_assert_eq!(op.pc, pc, "replay cursor out of sync");

        // The uncached fetch would cost `addr_phase + latency - 1` wait
        // cycles through the AHB port (saturating at zero).
        let seq = self.last_fetch == Some(pc.wrapping_sub(4));
        let addr_phase = if seq { 0 } else { AhbPort::<I>::NONSEQ_COST };
        let fetch_wait = (addr_phase + u64::from(op.latency)).saturating_sub(1);
        self.last_fetch = Some(pc);

        let stop = self.execute_inst(op.inst, fetch_wait)?;
        // Keep replaying the block while execution falls through it.
        if !is_last && self.pc == pc.wrapping_add(4) {
            self.replay = Some((block_idx, op_idx + 1));
        }
        Ok(stop)
    }

    /// Decode the basic block starting at `entry` into the cache and
    /// return its index. Instruction words are read directly from the
    /// downstream memory (zero architectural cost), measuring each
    /// word's fetch latency for exact replay timing.
    fn build_block(&mut self, entry: u32) -> Result<u32, CpuError> {
        let mut ops = Vec::new();
        let mut pc = entry;
        loop {
            let now = self.cycle;
            let resp = match self.imem.downstream_mut().access(&Request::read32(pc), now) {
                Ok(r) => r,
                // A fault at the entry reproduces the uncached fetch
                // fault; one later merely ends the block early (the
                // uncached core would only fault on reaching that PC).
                Err(source) if pc == entry => return Err(CpuError::FetchFault { pc, source }),
                Err(_) => break,
            };
            let latency = u32::try_from(resp.done_at - now).expect("slave latency fits u32");
            let inst = match decode(resp.data as u32, pc) {
                Ok(inst) => inst,
                Err(e) if pc == entry => {
                    // The fetch itself succeeded — record it for the
                    // SEQ/NONSEQ classifier, exactly as the uncached
                    // path updates the port before decoding fails.
                    self.last_fetch = Some(pc);
                    return Err(CpuError::Illegal(e));
                }
                Err(_) => break,
            };
            let done = ends_block(&inst);
            ops.push(CachedOp { pc, latency, inst });
            if done || ops.len() >= BlockCache::MAX_BLOCK_OPS {
                break;
            }
            pc = pc.wrapping_add(4);
        }
        Ok(self.cache.as_mut().expect("cached mode").insert(ops))
    }

    /// EX + MEM + retire for one decoded instruction — shared verbatim
    /// by the uncached and cached step paths so architectural state,
    /// modeled cycles and pipeline statistics cannot diverge.
    fn execute_inst(
        &mut self,
        inst: Inst,
        fetch_wait: u64,
    ) -> Result<Option<StopReason>, CpuError> {
        let mut next_pc = self.pc.wrapping_add(4);
        let mut mem_wait = 0u64;
        let mut stop = None;
        match inst {
            Inst::Lui { rd, imm } => self.regs.write(rd, imm),
            Inst::Auipc { rd, imm } => self.regs.write(rd, self.pc.wrapping_add(imm)),
            Inst::Jal { rd, offset } => {
                self.regs.write(rd, next_pc);
                next_pc = self.pc.wrapping_add(offset as u32);
            }
            Inst::Jalr { rd, rs1, offset } => {
                let target = self.regs.read(rs1).wrapping_add(offset as u32) & !1;
                self.regs.write(rd, next_pc);
                next_pc = target;
            }
            Inst::Branch {
                op,
                rs1,
                rs2,
                offset,
            } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                let take = match op {
                    BranchOp::Eq => a == b,
                    BranchOp::Ne => a != b,
                    BranchOp::Lt => (a as i32) < (b as i32),
                    BranchOp::Ge => (a as i32) >= (b as i32),
                    BranchOp::Ltu => a < b,
                    BranchOp::Geu => a >= b,
                };
                if take {
                    next_pc = self.pc.wrapping_add(offset as u32);
                }
            }
            Inst::Load {
                width,
                rd,
                rs1,
                offset,
            } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                let (raw, wait) = self.data_access(addr, width, None)?;
                mem_wait = wait;
                let value = match width {
                    MemWidth::Byte => raw as u8 as i8 as i32 as u32,
                    MemWidth::ByteU => u32::from(raw as u8),
                    MemWidth::Half => raw as u16 as i16 as i32 as u32,
                    MemWidth::HalfU => u32::from(raw as u16),
                    MemWidth::Word => raw,
                };
                self.regs.write(rd, value);
            }
            Inst::Store {
                width,
                rs1,
                rs2,
                offset,
            } => {
                let addr = self.regs.read(rs1).wrapping_add(offset as u32);
                let value = self.regs.read(rs2);
                let (_, wait) = self.data_access(addr, width, Some(value))?;
                mem_wait = wait;
            }
            Inst::AluImm { op, rd, rs1, imm } => {
                let a = self.regs.read(rs1);
                self.regs.write(rd, alu(op, a, imm as u32));
            }
            Inst::Alu { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.write(rd, alu(op, a, b));
            }
            Inst::Mul { op, rd, rs1, rs2 } => {
                let a = self.regs.read(rs1);
                let b = self.regs.read(rs2);
                self.regs.write(rd, muldiv(op, a, b));
            }
            Inst::Fence => {}
            Inst::Ecall => stop = Some(StopReason::Ecall),
            Inst::Ebreak => stop = Some(StopReason::Ebreak),
            Inst::Wfi => stop = Some(StopReason::Wfi),
            Inst::Mret => {
                next_pc = self.csrs.read(crate::csr::MEPC);
            }
            Inst::Csr { op, rd, rs1, csr } => {
                self.csrs.cycle = self.cycle;
                self.csrs.instret = self.retired;
                let old = self.csrs.read(csr);
                let operand = self.regs.read(rs1);
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs => (rs1 != crate::reg::ZERO).then_some(old | operand),
                    CsrOp::Rc => (rs1 != crate::reg::ZERO).then_some(old & !operand),
                };
                if let Some(v) = new {
                    self.csrs.write(csr, v);
                }
                self.regs.write(rd, old);
            }
            Inst::CsrImm { op, rd, imm, csr } => {
                self.csrs.cycle = self.cycle;
                self.csrs.instret = self.retired;
                let old = self.csrs.read(csr);
                let operand = u32::from(imm);
                let new = match op {
                    CsrOp::Rw => Some(operand),
                    CsrOp::Rs => (imm != 0).then_some(old | operand),
                    CsrOp::Rc => (imm != 0).then_some(old & !operand),
                };
                if let Some(v) = new {
                    self.csrs.write(csr, v);
                }
                self.regs.write(rd, old);
            }
        }

        let taken = next_pc != self.pc.wrapping_add(4);
        self.cycle += self.pipeline.retire(&inst, taken, fetch_wait, mem_wait);
        self.retired += 1;
        self.pc = next_pc;
        Ok(stop)
    }

    /// Run until a halt condition or `max_instructions` retire.
    ///
    /// # Errors
    ///
    /// Propagates the first [`CpuError`].
    pub fn run(&mut self, max_instructions: u64) -> Result<StopReason, CpuError> {
        for _ in 0..max_instructions {
            if let Some(stop) = self.step()? {
                return Ok(stop);
            }
        }
        Ok(StopReason::MaxInstructions)
    }

    /// Execute up to `limit` instructions, batching and — when a poll
    /// loop is provably periodic — fast-forwarding it. Returns how many
    /// instructions were executed (counting a faulting attempt) and the
    /// step outcome; cycles, retired counts, pipeline statistics and
    /// architectural state end bit-identical to `limit` plain
    /// [`Core::step`] calls.
    ///
    /// The fast-forward engages only while an MMIO read lease is held
    /// (see [`Target::read_lease`]) and the loop body touches no bus
    /// port — then the period's only inputs are the lease's constant
    /// value and the static decoded firmware, so one observed period
    /// determines all following ones and their deltas can be multiplied
    /// instead of replayed.
    pub fn run_block(&mut self, limit: u64) -> (u64, Result<Option<StopReason>, CpuError>) {
        let mut executed = 0u64;
        let mut anchor: Option<PollAnchor> = None;
        while executed < limit {
            let polled = self.lease_elided;
            executed += 1;
            match self.step() {
                Ok(None) => {}
                Ok(stop @ Some(_)) => return (executed, Ok(stop)),
                Err(e) => return (executed, Err(e)),
            }
            if self.lease_elided == polled {
                // Only lease-elided reads can form a skippable period;
                // other instructions neither anchor nor advance it.
                continue;
            }
            match &anchor {
                Some(a) if a.pc == self.pc => {
                    if let Some(skipped) = self.try_fast_forward(a, limit - executed) {
                        executed += skipped;
                        anchor = None;
                    } else {
                        anchor = self.poll_anchor();
                    }
                }
                _ => anchor = self.poll_anchor(),
            }
        }
        (executed, Ok(None))
    }

    /// Snapshot the fast-forward comparison state; `None` when no lease
    /// is held (nothing to prove a period against).
    fn poll_anchor(&self) -> Option<PollAnchor> {
        let lease = self.lease?;
        let cache = self.cache.as_ref()?;
        Some(PollAnchor {
            pc: self.pc,
            cycle: self.cycle,
            retired: self.retired,
            regs: self.regs.clone(),
            csrs: self.csrs.clone(),
            pending_load: self.pipeline.pending_load(),
            replay: self.replay,
            last_fetch: self.last_fetch,
            last_dmem: self.last_dmem,
            lease,
            pstats: self.pipeline.stats(),
            cstats: cache.stats,
            elided: self.lease_elided,
            imem_stats: self.imem.stats(),
            dmem_stats: self.dmem.stats(),
        })
    }

    /// If the state at the current anchor phase equals `a` (one period
    /// ago) in every input-determining component, multiply the period's
    /// deltas by as many repetitions as fit before the lease deadline
    /// and the `budget` (in instructions). Returns instructions skipped.
    fn try_fast_forward(&mut self, a: &PollAnchor, budget: u64) -> Option<u64> {
        let dc = self.cycle - a.cycle;
        let dr = self.retired - a.retired;
        if dc == 0 || dr == 0 {
            return None;
        }
        // The period must have consumed no input beyond the lease: no
        // transfer on either AHB port, no block-cache miss (a miss
        // mutates the cache), and the same lease throughout.
        let lease = self.lease.filter(|l| *l == a.lease)?;
        let cstats = self.cache.as_ref()?.stats;
        if self.imem.stats() != a.imem_stats
            || self.dmem.stats() != a.dmem_stats
            || cstats.misses != a.cstats.misses
            || cstats.invalidations != a.cstats.invalidations
        {
            return None;
        }
        // Identical machine state at the same phase ⇒ periodic.
        if self.regs != a.regs
            || self.csrs != a.csrs
            || self.pipeline.pending_load() != a.pending_load
            || self.replay != a.replay
            || self.last_fetch != a.last_fetch
            || self.last_dmem != a.last_dmem
        {
            return None;
        }
        // Skip only periods that *end* at or before the lease deadline;
        // their internal poll reads then issue strictly before it. The
        // boundary iterations run interpreted.
        let k_time = lease.until.saturating_sub(self.cycle) / dc;
        let k = k_time.min(budget / dr);
        if k == 0 {
            return None;
        }
        self.cycle += dc * k;
        self.retired += dr * k;
        self.lease_elided += (self.lease_elided - a.elided) * k;
        let per_period = self.pipeline.stats().since(&a.pstats);
        self.pipeline.fast_forward(&per_period, k);
        let cache = self.cache.as_mut().expect("checked above");
        cache.stats.hits += (cstats.hits - a.cstats.hits) * k;
        cache.stats.replayed_ops += (cstats.replayed_ops - a.cstats.replayed_ops) * k;
        Some(dr * k)
    }
}

fn alu(op: AluOp, a: u32, b: u32) -> u32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Sll => a.wrapping_shl(b & 0x1F),
        AluOp::Slt => u32::from((a as i32) < (b as i32)),
        AluOp::Sltu => u32::from(a < b),
        AluOp::Xor => a ^ b,
        AluOp::Srl => a.wrapping_shr(b & 0x1F),
        AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1F)) as u32,
        AluOp::Or => a | b,
        AluOp::And => a & b,
    }
}

fn muldiv(op: MulOp, a: u32, b: u32) -> u32 {
    match op {
        MulOp::Mul => a.wrapping_mul(b),
        MulOp::Mulh => ((i64::from(a as i32) * i64::from(b as i32)) >> 32) as u32,
        MulOp::Mulhsu => ((i64::from(a as i32).wrapping_mul(i64::from(b))) >> 32) as u32,
        MulOp::Mulhu => ((u64::from(a) * u64::from(b)) >> 32) as u32,
        MulOp::Div => {
            if b == 0 {
                u32::MAX
            } else if a == 0x8000_0000 && b == u32::MAX {
                a
            } else {
                ((a as i32) / (b as i32)) as u32
            }
        }
        MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
        MulOp::Rem => {
            if b == 0 {
                a
            } else if a == 0x8000_0000 && b == u32::MAX {
                0
            } else {
                ((a as i32) % (b as i32)) as u32
            }
        }
        MulOp::Remu => {
            if b == 0 {
                a
            } else {
                a % b
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::reg::{A0, A1, T0, T1};
    use rvnv_bus::sram::Sram;

    fn program(insts: &[Inst]) -> Sram {
        let mut bytes = Vec::new();
        for i in insts {
            bytes.extend_from_slice(&encode(i).to_le_bytes());
        }
        Sram::rom(bytes)
    }

    fn run_insts(insts: &[Inst]) -> Core<Sram, Sram> {
        let mut core = Core::new(program(insts), Sram::new(4096));
        core.run(10_000).unwrap();
        core
    }

    #[test]
    fn arithmetic_program() {
        let core = run_insts(&[
            Inst::AluImm {
                op: AluOp::Add,
                rd: A0,
                rs1: crate::reg::ZERO,
                imm: 40,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: A1,
                rs1: crate::reg::ZERO,
                imm: 2,
            },
            Inst::Alu {
                op: AluOp::Add,
                rd: A0,
                rs1: A0,
                rs2: A1,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(A0), 42);
        assert_eq!(core.retired(), 4);
    }

    #[test]
    fn memory_round_trip_and_sign_extension() {
        let core = run_insts(&[
            // a0 = 0x180 (data area), store 0xFFFF_FF80 as byte, load back.
            Inst::AluImm {
                op: AluOp::Add,
                rd: A0,
                rs1: crate::reg::ZERO,
                imm: 0x180,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: crate::reg::ZERO,
                imm: -128,
            },
            Inst::Store {
                width: MemWidth::Byte,
                rs1: A0,
                rs2: T0,
                offset: 0,
            },
            Inst::Load {
                width: MemWidth::Byte,
                rd: T1,
                rs1: A0,
                offset: 0,
            },
            Inst::Load {
                width: MemWidth::ByteU,
                rd: A1,
                rs1: A0,
                offset: 0,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(T1), 0xFFFF_FF80);
        assert_eq!(core.read_reg(A1), 0x80);
    }

    #[test]
    fn loop_counts_and_branches() {
        // t0 = 10; loop: t0--; bne t0, zero, loop; ebreak
        let core = run_insts(&[
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: crate::reg::ZERO,
                imm: 10,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: T0,
                imm: -1,
            },
            Inst::Branch {
                op: BranchOp::Ne,
                rs1: T0,
                rs2: crate::reg::ZERO,
                offset: -4,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(T0), 0);
        assert_eq!(core.retired(), 1 + 2 * 10 + 1);
        // 9 taken branches × penalty 2 are visible in the stats.
        assert_eq!(core.pipeline_stats().branch_stalls, 18);
    }

    #[test]
    fn div_by_zero_follows_spec() {
        let core = run_insts(&[
            Inst::AluImm {
                op: AluOp::Add,
                rd: A0,
                rs1: crate::reg::ZERO,
                imm: 7,
            },
            Inst::Mul {
                op: MulOp::Div,
                rd: A1,
                rs1: A0,
                rs2: crate::reg::ZERO,
            },
            Inst::Mul {
                op: MulOp::Rem,
                rd: T0,
                rs1: A0,
                rs2: crate::reg::ZERO,
            },
            Inst::Ebreak,
        ]);
        assert_eq!(core.read_reg(A1), u32::MAX);
        assert_eq!(core.read_reg(T0), 7);
    }

    #[test]
    fn mcycle_csr_reads_advance() {
        let core = run_insts(&[
            Inst::Csr {
                op: CsrOp::Rs,
                rd: A0,
                rs1: crate::reg::ZERO,
                csr: crate::csr::MCYCLE,
            },
            Inst::AluImm {
                op: AluOp::Add,
                rd: T0,
                rs1: crate::reg::ZERO,
                imm: 1,
            },
            Inst::Csr {
                op: CsrOp::Rs,
                rd: A1,
                rs1: crate::reg::ZERO,
                csr: crate::csr::MCYCLE,
            },
            Inst::Ebreak,
        ]);
        assert!(core.read_reg(A1) > core.read_reg(A0));
    }

    #[test]
    fn fetch_fault_reports_pc() {
        let mut core = Core::new(Sram::rom(vec![0x13, 0, 0, 0]), Sram::new(64));
        core.set_pc(0x1000);
        let e = core.step().unwrap_err();
        assert!(matches!(e, CpuError::FetchFault { pc: 0x1000, .. }));
    }

    #[test]
    fn data_fault_reports_address() {
        let mut core = Core::new(
            program(&[Inst::Load {
                width: MemWidth::Word,
                rd: A0,
                rs1: crate::reg::ZERO,
                offset: 0x7FF,
            }]),
            Sram::new(64),
        );
        let e = core.run(10).unwrap_err();
        assert!(matches!(e, CpuError::DataFault { .. }));
    }

    #[test]
    fn instruction_budget() {
        // Infinite loop: jal zero, 0.
        let mut core = Core::new(
            program(&[Inst::Jal {
                rd: crate::reg::ZERO,
                offset: 0,
            }]),
            Sram::new(64),
        );
        assert_eq!(core.run(100).unwrap(), StopReason::MaxInstructions);
        assert_eq!(core.retired(), 100);
    }

    /// Run `insts` twice — plain interpreter vs decoded-block cache —
    /// and demand bit-identical cycles, retired count, PC and regs.
    fn differential(insts: &[Inst], max: u64) -> Core<Sram, Sram> {
        let mut plain = Core::new(program(insts), Sram::new(4096));
        let plain_stop = plain.run(max);
        let mut cached = Core::new(program(insts), Sram::new(4096));
        cached.enable_block_cache(insts.len() * 4);
        let cached_stop = cached.run(max);
        assert_eq!(plain_stop, cached_stop);
        assert_eq!(plain.cycle(), cached.cycle(), "modeled cycles diverged");
        assert_eq!(plain.retired(), cached.retired());
        assert_eq!(plain.pc(), cached.pc());
        for r in 0..32 {
            let r = crate::reg::Reg::new(r);
            assert_eq!(plain.read_reg(r), cached.read_reg(r), "reg {r:?}");
        }
        assert_eq!(plain.pipeline_stats(), cached.pipeline_stats());
        cached
    }

    #[test]
    fn block_cache_is_cycle_exact_on_a_loop() {
        let cached = differential(
            &[
                Inst::AluImm {
                    op: AluOp::Add,
                    rd: T0,
                    rs1: crate::reg::ZERO,
                    imm: 100,
                },
                Inst::AluImm {
                    op: AluOp::Add,
                    rd: T0,
                    rs1: T0,
                    imm: -1,
                },
                Inst::Branch {
                    op: BranchOp::Ne,
                    rs1: T0,
                    rs2: crate::reg::ZERO,
                    offset: -4,
                },
                Inst::Ebreak,
            ],
            10_000,
        );
        let stats = cached.block_cache_stats().expect("cache attached");
        assert!(stats.hits > 90, "loop body should replay: {stats:?}");
        assert_eq!(stats.replayed_ops, cached.retired());
    }

    #[test]
    fn block_cache_is_cycle_exact_with_memory_and_muldiv() {
        differential(
            &[
                Inst::AluImm {
                    op: AluOp::Add,
                    rd: A0,
                    rs1: crate::reg::ZERO,
                    imm: 0x180,
                },
                Inst::AluImm {
                    op: AluOp::Add,
                    rd: T0,
                    rs1: crate::reg::ZERO,
                    imm: 37,
                },
                Inst::Store {
                    width: MemWidth::Word,
                    rs1: A0,
                    rs2: T0,
                    offset: 0,
                },
                // Load-use hazard right after the load, then mul/div
                // extra cycles — all timing paths exercised.
                Inst::Load {
                    width: MemWidth::Word,
                    rd: T1,
                    rs1: A0,
                    offset: 0,
                },
                Inst::Mul {
                    op: MulOp::Mul,
                    rd: T1,
                    rs1: T1,
                    rs2: T0,
                },
                Inst::Mul {
                    op: MulOp::Div,
                    rd: A1,
                    rs1: T1,
                    rs2: T0,
                },
                Inst::Ebreak,
            ],
            100,
        );
    }

    #[test]
    fn block_cache_reproduces_data_faults_and_recovers() {
        let insts = [
            Inst::Load {
                width: MemWidth::Word,
                rd: A0,
                rs1: crate::reg::ZERO,
                offset: 0x7FF,
            },
            Inst::Ebreak,
        ];
        let mut plain = Core::new(program(&insts), Sram::new(64));
        let mut cached = Core::new(program(&insts), Sram::new(64));
        cached.enable_block_cache(64);
        let pe = plain.run(10).unwrap_err();
        let ce = cached.run(10).unwrap_err();
        assert_eq!(pe, ce);
        assert_eq!(plain.cycle(), cached.cycle());
        assert_eq!(plain.pc(), cached.pc());
        // Stepping again re-faults identically from the faulting PC.
        assert_eq!(plain.step().unwrap_err(), cached.step().unwrap_err());
    }

    #[test]
    fn mmio_poll_loop_sees_bus_latency() {
        // Polling DRAM-backed status: cycles per iteration exceed the
        // SRAM-only case because of wait states.
        let prog = [
            Inst::Load {
                width: MemWidth::Word,
                rd: T0,
                rs1: crate::reg::ZERO,
                offset: 0x100,
            },
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: T0,
                rs2: crate::reg::ZERO,
                offset: -4,
            },
            Inst::Ebreak,
        ];
        let mut slow = Core::new(
            program(&prog),
            rvnv_bus::dram::Dram::new(4096, Default::default()),
        );
        // Never becomes nonzero; run a fixed number of instructions.
        slow.run(20).unwrap();
        let mut fast = Core::new(program(&prog), Sram::new(4096));
        fast.run(20).unwrap();
        assert!(slow.cycle() > 2 * fast.cycle());
        assert!(slow.pipeline_stats().mem_stalls > 0);
    }
}
