//! Decoded instruction representation for RV32IM + Zicsr.

use crate::reg::Reg;

/// ALU operation of an R-type or I-type arithmetic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`).
    Sub,
    /// Shift left logical.
    Sll,
    /// Set if less than (signed).
    Slt,
    /// Set if less than (unsigned).
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Shift right logical.
    Srl,
    /// Shift right arithmetic.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

/// RV32M multiply/divide operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MulOp {
    /// Low 32 bits of the product.
    Mul,
    /// High 32 bits of signed × signed.
    Mulh,
    /// High 32 bits of signed × unsigned.
    Mulhsu,
    /// High 32 bits of unsigned × unsigned.
    Mulhu,
    /// Signed division.
    Div,
    /// Unsigned division.
    Divu,
    /// Signed remainder.
    Rem,
    /// Unsigned remainder.
    Remu,
}

/// Branch comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than (signed).
    Lt,
    /// Greater or equal (signed).
    Ge,
    /// Less than (unsigned).
    Ltu,
    /// Greater or equal (unsigned).
    Geu,
}

/// Memory access width for loads/stores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemWidth {
    /// 8-bit, sign-extended on load (`lb`/`sb`).
    Byte,
    /// 8-bit, zero-extended on load (`lbu`).
    ByteU,
    /// 16-bit, sign-extended on load (`lh`/`sh`).
    Half,
    /// 16-bit, zero-extended on load (`lhu`).
    HalfU,
    /// 32-bit (`lw`/`sw`).
    Word,
}

impl MemWidth {
    /// Number of bytes accessed.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            MemWidth::Byte | MemWidth::ByteU => 1,
            MemWidth::Half | MemWidth::HalfU => 2,
            MemWidth::Word => 4,
        }
    }
}

/// CSR access operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CsrOp {
    /// Read/write (`csrrw`).
    Rw,
    /// Read and set bits (`csrrs`).
    Rs,
    /// Read and clear bits (`csrrc`).
    Rc,
}

/// A decoded RV32IM instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Load upper immediate.
    Lui { rd: Reg, imm: u32 },
    /// Add upper immediate to PC.
    Auipc { rd: Reg, imm: u32 },
    /// Jump and link (PC-relative).
    Jal { rd: Reg, offset: i32 },
    /// Jump and link register.
    Jalr { rd: Reg, rs1: Reg, offset: i32 },
    /// Conditional branch.
    Branch {
        op: BranchOp,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Load from memory.
    Load {
        width: MemWidth,
        rd: Reg,
        rs1: Reg,
        offset: i32,
    },
    /// Store to memory.
    Store {
        width: MemWidth,
        rs1: Reg,
        rs2: Reg,
        offset: i32,
    },
    /// Register–immediate ALU operation.
    AluImm {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        imm: i32,
    },
    /// Register–register ALU operation.
    Alu {
        op: AluOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// RV32M multiply/divide.
    Mul {
        op: MulOp,
        rd: Reg,
        rs1: Reg,
        rs2: Reg,
    },
    /// Memory fence (no-op in this single-hart model).
    Fence,
    /// Environment call.
    Ecall,
    /// Breakpoint — the bare-metal firmware's "done" marker.
    Ebreak,
    /// CSR register operation.
    Csr {
        op: CsrOp,
        rd: Reg,
        rs1: Reg,
        csr: u16,
    },
    /// CSR immediate operation (rs1 field holds the 5-bit immediate).
    CsrImm {
        op: CsrOp,
        rd: Reg,
        imm: u8,
        csr: u16,
    },
    /// Machine return (treated as a halt in bare-metal firmware).
    Mret,
    /// Wait for interrupt.
    Wfi,
}

impl Inst {
    /// Whether this instruction redirects the PC when executed
    /// (unconditionally or potentially).
    #[must_use]
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jal { .. } | Inst::Jalr { .. } | Inst::Branch { .. } | Inst::Mret
        )
    }

    /// Destination register written by this instruction, if any.
    #[must_use]
    pub fn dest(&self) -> Option<Reg> {
        match *self {
            Inst::Lui { rd, .. }
            | Inst::Auipc { rd, .. }
            | Inst::Jal { rd, .. }
            | Inst::Jalr { rd, .. }
            | Inst::Load { rd, .. }
            | Inst::AluImm { rd, .. }
            | Inst::Alu { rd, .. }
            | Inst::Mul { rd, .. }
            | Inst::Csr { rd, .. }
            | Inst::CsrImm { rd, .. } => Some(rd),
            _ => None,
        }
    }

    /// Source registers read by this instruction.
    #[must_use]
    pub fn sources(&self) -> (Option<Reg>, Option<Reg>) {
        match *self {
            Inst::Jalr { rs1, .. }
            | Inst::Load { rs1, .. }
            | Inst::AluImm { rs1, .. }
            | Inst::Csr { rs1, .. } => (Some(rs1), None),
            Inst::Branch { rs1, rs2, .. }
            | Inst::Store { rs1, rs2, .. }
            | Inst::Alu { rs1, rs2, .. }
            | Inst::Mul { rs1, rs2, .. } => (Some(rs1), Some(rs2)),
            _ => (None, None),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, A1, T0};

    #[test]
    fn control_flow_classification() {
        assert!(Inst::Jal { rd: A0, offset: 8 }.is_control_flow());
        assert!(Inst::Branch {
            op: BranchOp::Eq,
            rs1: A0,
            rs2: A1,
            offset: -4
        }
        .is_control_flow());
        assert!(!Inst::Ebreak.is_control_flow());
        assert!(!Inst::AluImm {
            op: AluOp::Add,
            rd: A0,
            rs1: A0,
            imm: 1
        }
        .is_control_flow());
    }

    #[test]
    fn dest_and_sources() {
        let ld = Inst::Load {
            width: MemWidth::Word,
            rd: T0,
            rs1: A0,
            offset: 4,
        };
        assert_eq!(ld.dest(), Some(T0));
        assert_eq!(ld.sources(), (Some(A0), None));
        let st = Inst::Store {
            width: MemWidth::Word,
            rs1: A0,
            rs2: A1,
            offset: 0,
        };
        assert_eq!(st.dest(), None);
        assert_eq!(st.sources(), (Some(A0), Some(A1)));
    }

    #[test]
    fn mem_width_bytes() {
        assert_eq!(MemWidth::Byte.bytes(), 1);
        assert_eq!(MemWidth::ByteU.bytes(), 1);
        assert_eq!(MemWidth::Half.bytes(), 2);
        assert_eq!(MemWidth::HalfU.bytes(), 2);
        assert_eq!(MemWidth::Word.bytes(), 4);
    }
}
