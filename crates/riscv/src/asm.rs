//! Two-pass RISC-V assembler.
//!
//! The paper's toolflow converts NVDLA configuration files into "RISC-V
//! assembly code … compiled into machine code using the RISC-V core SDK".
//! This module is that SDK step: it assembles the generated bare-metal
//! programs (RV32IM + Zicsr plus the usual pseudo-instructions) into a
//! flat binary [`Image`] for the program memory.
//!
//! Supported directives: `.text`, `.org`, `.align`, `.word`, `.half`,
//! `.byte`, `.space`, `.equ`, `.global` (accepted and ignored).
//!
//! Supported pseudo-instructions: `nop`, `li`, `la`, `mv`, `not`, `neg`,
//! `seqz`, `snez`, `j`, `jr`, `ret`, `call`, `beqz`, `bnez`, `bgt`,
//! `ble`, `bgtu`, `bleu`, `csrr`, `csrw`.

use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

use crate::csr;
use crate::encode::encode;
use crate::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use crate::reg::{Reg, RA, ZERO};

/// Assembly failure with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, message: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

/// An assembled flat binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Image {
    base: u32,
    data: Vec<u8>,
    symbols: BTreeMap<String, u32>,
}

impl Image {
    /// Load address of the image (set by the first `.org`, default 0).
    #[must_use]
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The raw little-endian bytes.
    #[must_use]
    pub fn bytes(&self) -> Vec<u8> {
        self.data.clone()
    }

    /// Size in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the image contains no bytes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Address of a label, if defined.
    #[must_use]
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// All defined symbols.
    #[must_use]
    pub fn symbols(&self) -> &BTreeMap<String, u32> {
        &self.symbols
    }

    /// The image as 32-bit words (zero-padded at the tail).
    #[must_use]
    pub fn words(&self) -> Vec<u32> {
        self.data
            .chunks(4)
            .map(|c| {
                let mut w = [0u8; 4];
                w[..c.len()].copy_from_slice(c);
                u32::from_le_bytes(w)
            })
            .collect()
    }
}

/// One parsed source statement.
#[derive(Debug, Clone)]
enum Stmt {
    Inst {
        mnemonic: String,
        operands: Vec<String>,
    },
    Directive {
        name: String,
        operands: Vec<String>,
    },
}

#[derive(Debug, Clone)]
struct Line {
    number: usize,
    labels: Vec<String>,
    stmt: Option<Stmt>,
}

fn tokenize_line(number: usize, raw: &str) -> Result<Line, AsmError> {
    // Strip comments (# or //), keeping it simple: no string literals
    // containing # are supported.
    let mut text = raw;
    if let Some(i) = text.find('#') {
        text = &text[..i];
    }
    if let Some(i) = text.find("//") {
        text = &text[..i];
    }
    let mut labels = Vec::new();
    let mut rest = text.trim();
    while let Some(colon) = rest.find(':') {
        let (head, tail) = rest.split_at(colon);
        let label = head.trim();
        if label.is_empty()
            || !label
                .chars()
                .all(|c| c.is_alphanumeric() || c == '_' || c == '.')
        {
            break;
        }
        labels.push(label.to_string());
        rest = tail[1..].trim();
    }
    let stmt = if rest.is_empty() {
        None
    } else {
        let (mnemonic, args) = match rest.find(char::is_whitespace) {
            Some(i) => (&rest[..i], rest[i..].trim()),
            None => (rest, ""),
        };
        let operands: Vec<String> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',').map(|s| s.trim().to_string()).collect()
        };
        if operands.iter().any(String::is_empty) {
            return err(number, "empty operand");
        }
        let mnemonic = mnemonic.to_ascii_lowercase();
        if mnemonic.starts_with('.') {
            Some(Stmt::Directive {
                name: mnemonic,
                operands,
            })
        } else {
            Some(Stmt::Inst { mnemonic, operands })
        }
    };
    Ok(Line {
        number,
        labels,
        stmt,
    })
}

/// Parse an integer literal: decimal, `0x…`, `0b…`, optionally negative.
fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        body.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

fn parse_csr_name(s: &str) -> Option<u16> {
    match s {
        "mstatus" => Some(csr::MSTATUS),
        "mtvec" => Some(csr::MTVEC),
        "mscratch" => Some(csr::MSCRATCH),
        "mepc" => Some(csr::MEPC),
        "mcause" => Some(csr::MCAUSE),
        "mcycle" => Some(csr::MCYCLE),
        "minstret" => Some(csr::MINSTRET),
        "mcycleh" => Some(csr::MCYCLEH),
        "minstreth" => Some(csr::MINSTRETH),
        "mhartid" => Some(csr::MHARTID),
        _ => parse_int(s).and_then(|v| u16::try_from(v).ok()),
    }
}

/// Split `li`-style immediates into a LUI part and a sign-adjusted
/// ADDI part such that `(hi << 12) + sext(lo) == value`.
fn hi_lo(value: u32) -> (u32, i32) {
    let lo = (value & 0xFFF) as i32;
    let lo = if lo >= 0x800 { lo - 0x1000 } else { lo };
    let hi = value.wrapping_sub(lo as u32);
    (hi, lo)
}

fn fits12(v: i64) -> bool {
    (-2048..=2047).contains(&v)
}

#[derive(Debug)]
struct Assembler<'a> {
    symbols: BTreeMap<String, u32>,
    equs: BTreeMap<String, i64>,
    lines: Vec<Line>,
    source: &'a str,
}

impl<'a> Assembler<'a> {
    fn parse(source: &'a str) -> Result<Self, AsmError> {
        let mut lines = Vec::new();
        for (i, raw) in source.lines().enumerate() {
            lines.push(tokenize_line(i + 1, raw)?);
        }
        Ok(Assembler {
            symbols: BTreeMap::new(),
            equs: BTreeMap::new(),
            lines,
            source,
        })
    }

    /// Size in bytes of a statement (pass 1).
    fn stmt_size(&self, line: &Line, pc: u32) -> Result<u32, AsmError> {
        let Some(stmt) = &line.stmt else { return Ok(0) };
        match stmt {
            Stmt::Inst { mnemonic, operands } => Ok(match mnemonic.as_str() {
                "li" => {
                    let val = operands
                        .get(1)
                        .and_then(|s| self.resolve_int(s))
                        .unwrap_or(i64::MAX);
                    if fits12(val) {
                        4
                    } else {
                        8
                    }
                }
                "la" => 8,
                _ => 4,
            }),
            Stmt::Directive { name, operands } => match name.as_str() {
                ".word" => Ok(4 * operands.len() as u32),
                ".half" => Ok(2 * operands.len() as u32),
                ".byte" => Ok(operands.len() as u32),
                ".space" => {
                    let n = operands
                        .first()
                        .and_then(|s| self.resolve_int(s))
                        .unwrap_or(0);
                    Ok(n as u32)
                }
                ".align" => {
                    let n = operands
                        .first()
                        .and_then(|s| self.resolve_int(s))
                        .unwrap_or(2);
                    let align = 1u32 << n;
                    Ok((align - (pc % align)) % align)
                }
                ".org" => {
                    let target = self
                        .resolve_int(operands.first().map_or("", String::as_str))
                        .unwrap_or(0) as u32;
                    if target < pc {
                        return err(line.number, format!(".org {target:#x} moves backwards"));
                    }
                    Ok(target - pc)
                }
                _ => Ok(0),
            },
        }
    }

    /// Resolve a numeric literal or `.equ` constant (not labels).
    fn resolve_int(&self, s: &str) -> Option<i64> {
        parse_int(s).or_else(|| self.equs.get(s).copied())
    }

    /// Resolve any expression to a value: literal, `.equ`, label,
    /// `%hi(x)`, `%lo(x)`.
    fn resolve(&self, s: &str, line: usize) -> Result<i64, AsmError> {
        let s = s.trim();
        if let Some(inner) = s.strip_prefix("%hi(").and_then(|r| r.strip_suffix(')')) {
            let v = self.resolve(inner, line)? as u32;
            let (hi, _) = hi_lo(v);
            return Ok(i64::from(hi >> 12));
        }
        if let Some(inner) = s.strip_prefix("%lo(").and_then(|r| r.strip_suffix(')')) {
            let v = self.resolve(inner, line)? as u32;
            let (_, lo) = hi_lo(v);
            return Ok(i64::from(lo));
        }
        if let Some(v) = self.resolve_int(s) {
            return Ok(v);
        }
        // `symbol+offset` / `symbol-offset`.
        for (i, c) in s.char_indices().skip(1) {
            if c == '+' || c == '-' {
                let base = self.resolve(&s[..i], line)?;
                let off = self.resolve(&s[i + 1..], line)?;
                return Ok(if c == '+' { base + off } else { base - off });
            }
        }
        if let Some(&addr) = self.symbols.get(s) {
            return Ok(i64::from(addr));
        }
        err(line, format!("undefined symbol `{s}`"))
    }

    fn reg(&self, s: &str, line: usize) -> Result<Reg, AsmError> {
        Reg::parse(s.trim()).ok_or_else(|| AsmError {
            line,
            message: format!("unknown register `{s}`"),
        })
    }

    /// Parse `offset(reg)` memory operands.
    fn mem_operand(&self, s: &str, line: usize) -> Result<(i32, Reg), AsmError> {
        let s = s.trim();
        let open = s.rfind('(').ok_or_else(|| AsmError {
            line,
            message: format!("expected `offset(reg)`, got `{s}`"),
        })?;
        let close = s.rfind(')').filter(|&c| c > open).ok_or_else(|| AsmError {
            line,
            message: format!("unbalanced parentheses in `{s}`"),
        })?;
        let off_str = s[..open].trim();
        let offset = if off_str.is_empty() {
            0
        } else {
            self.resolve(off_str, line)?
        };
        if !fits12(offset) {
            return err(line, format!("offset {offset} out of 12-bit range"));
        }
        let reg = self.reg(&s[open + 1..close], line)?;
        Ok((offset as i32, reg))
    }

    fn branch_target(&self, s: &str, pc: u32, line: usize) -> Result<i32, AsmError> {
        let target = self.resolve(s, line)? as u32;
        let offset = target.wrapping_sub(pc) as i32;
        if !(-4096..=4094).contains(&offset) {
            return err(line, format!("branch target {offset} out of range"));
        }
        Ok(offset)
    }

    fn jump_target(&self, s: &str, pc: u32, line: usize) -> Result<i32, AsmError> {
        let target = self.resolve(s, line)? as u32;
        let offset = target.wrapping_sub(pc) as i32;
        if !(-(1 << 20)..(1 << 20)).contains(&offset) {
            return err(line, format!("jump target {offset} out of range"));
        }
        Ok(offset)
    }

    #[allow(clippy::too_many_lines)]
    fn encode_inst(
        &self,
        mnemonic: &str,
        ops: &[String],
        pc: u32,
        line: usize,
    ) -> Result<Vec<Inst>, AsmError> {
        let n = ops.len();
        let want = |k: usize| -> Result<(), AsmError> {
            if n == k {
                Ok(())
            } else {
                err(line, format!("`{mnemonic}` expects {k} operands, got {n}"))
            }
        };
        let alu_ops = |op: AluOp| -> Result<Vec<Inst>, AsmError> {
            want(3)?;
            Ok(vec![Inst::Alu {
                op,
                rd: self.reg(&ops[0], line)?,
                rs1: self.reg(&ops[1], line)?,
                rs2: self.reg(&ops[2], line)?,
            }])
        };
        let alu_imm = |op: AluOp, shift: bool| -> Result<Vec<Inst>, AsmError> {
            want(3)?;
            let imm = self.resolve(&ops[2], line)?;
            if shift {
                if !(0..=31).contains(&imm) {
                    return err(line, format!("shift amount {imm} out of range"));
                }
            } else if !fits12(imm) {
                return err(line, format!("immediate {imm} out of 12-bit range"));
            }
            Ok(vec![Inst::AluImm {
                op,
                rd: self.reg(&ops[0], line)?,
                rs1: self.reg(&ops[1], line)?,
                imm: imm as i32,
            }])
        };
        let mul_ops = |op: MulOp| -> Result<Vec<Inst>, AsmError> {
            want(3)?;
            Ok(vec![Inst::Mul {
                op,
                rd: self.reg(&ops[0], line)?,
                rs1: self.reg(&ops[1], line)?,
                rs2: self.reg(&ops[2], line)?,
            }])
        };
        let branch = |op: BranchOp, swap: bool| -> Result<Vec<Inst>, AsmError> {
            want(3)?;
            let (a, b) = if swap { (1, 0) } else { (0, 1) };
            Ok(vec![Inst::Branch {
                op,
                rs1: self.reg(&ops[a], line)?,
                rs2: self.reg(&ops[b], line)?,
                offset: self.branch_target(&ops[2], pc, line)?,
            }])
        };
        let branch_zero = |op: BranchOp| -> Result<Vec<Inst>, AsmError> {
            want(2)?;
            Ok(vec![Inst::Branch {
                op,
                rs1: self.reg(&ops[0], line)?,
                rs2: ZERO,
                offset: self.branch_target(&ops[1], pc, line)?,
            }])
        };
        let load = |width: MemWidth| -> Result<Vec<Inst>, AsmError> {
            want(2)?;
            let (offset, rs1) = self.mem_operand(&ops[1], line)?;
            Ok(vec![Inst::Load {
                width,
                rd: self.reg(&ops[0], line)?,
                rs1,
                offset,
            }])
        };
        let store = |width: MemWidth| -> Result<Vec<Inst>, AsmError> {
            want(2)?;
            let (offset, rs1) = self.mem_operand(&ops[1], line)?;
            Ok(vec![Inst::Store {
                width,
                rs1,
                rs2: self.reg(&ops[0], line)?,
                offset,
            }])
        };

        match mnemonic {
            // --- U / J types -------------------------------------------------
            "lui" => {
                want(2)?;
                let imm = self.resolve(&ops[1], line)?;
                if !(0..=0xF_FFFF).contains(&imm) {
                    return err(line, format!("lui immediate {imm} out of 20-bit range"));
                }
                Ok(vec![Inst::Lui {
                    rd: self.reg(&ops[0], line)?,
                    imm: (imm as u32) << 12,
                }])
            }
            "auipc" => {
                want(2)?;
                let imm = self.resolve(&ops[1], line)?;
                Ok(vec![Inst::Auipc {
                    rd: self.reg(&ops[0], line)?,
                    imm: (imm as u32) << 12,
                }])
            }
            "jal" => match n {
                1 => Ok(vec![Inst::Jal {
                    rd: RA,
                    offset: self.jump_target(&ops[0], pc, line)?,
                }]),
                2 => Ok(vec![Inst::Jal {
                    rd: self.reg(&ops[0], line)?,
                    offset: self.jump_target(&ops[1], pc, line)?,
                }]),
                _ => err(line, "`jal` expects 1 or 2 operands"),
            },
            "jalr" => match n {
                1 => Ok(vec![Inst::Jalr {
                    rd: RA,
                    rs1: self.reg(&ops[0], line)?,
                    offset: 0,
                }]),
                3 => {
                    let off = self.resolve(&ops[2], line)?;
                    if !fits12(off) {
                        return err(line, "jalr offset out of range");
                    }
                    Ok(vec![Inst::Jalr {
                        rd: self.reg(&ops[0], line)?,
                        rs1: self.reg(&ops[1], line)?,
                        offset: off as i32,
                    }])
                }
                _ => err(line, "`jalr` expects 1 or 3 operands"),
            },
            // --- branches ----------------------------------------------------
            "beq" => branch(BranchOp::Eq, false),
            "bne" => branch(BranchOp::Ne, false),
            "blt" => branch(BranchOp::Lt, false),
            "bge" => branch(BranchOp::Ge, false),
            "bltu" => branch(BranchOp::Ltu, false),
            "bgeu" => branch(BranchOp::Geu, false),
            "bgt" => branch(BranchOp::Lt, true),
            "ble" => branch(BranchOp::Ge, true),
            "bgtu" => branch(BranchOp::Ltu, true),
            "bleu" => branch(BranchOp::Geu, true),
            "beqz" => branch_zero(BranchOp::Eq),
            "bnez" => branch_zero(BranchOp::Ne),
            "bltz" => branch_zero(BranchOp::Lt),
            "bgez" => branch_zero(BranchOp::Ge),
            // --- loads/stores ------------------------------------------------
            "lb" => load(MemWidth::Byte),
            "lbu" => load(MemWidth::ByteU),
            "lh" => load(MemWidth::Half),
            "lhu" => load(MemWidth::HalfU),
            "lw" => load(MemWidth::Word),
            "sb" => store(MemWidth::Byte),
            "sh" => store(MemWidth::Half),
            "sw" => store(MemWidth::Word),
            // --- ALU ---------------------------------------------------------
            "add" => alu_ops(AluOp::Add),
            "sub" => alu_ops(AluOp::Sub),
            "sll" => alu_ops(AluOp::Sll),
            "slt" => alu_ops(AluOp::Slt),
            "sltu" => alu_ops(AluOp::Sltu),
            "xor" => alu_ops(AluOp::Xor),
            "srl" => alu_ops(AluOp::Srl),
            "sra" => alu_ops(AluOp::Sra),
            "or" => alu_ops(AluOp::Or),
            "and" => alu_ops(AluOp::And),
            "addi" => alu_imm(AluOp::Add, false),
            "slti" => alu_imm(AluOp::Slt, false),
            "sltiu" => alu_imm(AluOp::Sltu, false),
            "xori" => alu_imm(AluOp::Xor, false),
            "ori" => alu_imm(AluOp::Or, false),
            "andi" => alu_imm(AluOp::And, false),
            "slli" => alu_imm(AluOp::Sll, true),
            "srli" => alu_imm(AluOp::Srl, true),
            "srai" => alu_imm(AluOp::Sra, true),
            // --- RV32M ---------------------------------------------------------
            "mul" => mul_ops(MulOp::Mul),
            "mulh" => mul_ops(MulOp::Mulh),
            "mulhsu" => mul_ops(MulOp::Mulhsu),
            "mulhu" => mul_ops(MulOp::Mulhu),
            "div" => mul_ops(MulOp::Div),
            "divu" => mul_ops(MulOp::Divu),
            "rem" => mul_ops(MulOp::Rem),
            "remu" => mul_ops(MulOp::Remu),
            // --- system --------------------------------------------------------
            "fence" => Ok(vec![Inst::Fence]),
            "ecall" => Ok(vec![Inst::Ecall]),
            "ebreak" => Ok(vec![Inst::Ebreak]),
            "mret" => Ok(vec![Inst::Mret]),
            "wfi" => Ok(vec![Inst::Wfi]),
            "csrrw" | "csrrs" | "csrrc" => {
                want(3)?;
                let op = match mnemonic {
                    "csrrw" => CsrOp::Rw,
                    "csrrs" => CsrOp::Rs,
                    _ => CsrOp::Rc,
                };
                let csr = parse_csr_name(&ops[1]).ok_or_else(|| AsmError {
                    line,
                    message: format!("unknown CSR `{}`", ops[1]),
                })?;
                Ok(vec![Inst::Csr {
                    op,
                    rd: self.reg(&ops[0], line)?,
                    rs1: self.reg(&ops[2], line)?,
                    csr,
                }])
            }
            "csrr" => {
                want(2)?;
                let csr = parse_csr_name(&ops[1]).ok_or_else(|| AsmError {
                    line,
                    message: format!("unknown CSR `{}`", ops[1]),
                })?;
                Ok(vec![Inst::Csr {
                    op: CsrOp::Rs,
                    rd: self.reg(&ops[0], line)?,
                    rs1: ZERO,
                    csr,
                }])
            }
            "csrw" => {
                want(2)?;
                let csr = parse_csr_name(&ops[0]).ok_or_else(|| AsmError {
                    line,
                    message: format!("unknown CSR `{}`", ops[0]),
                })?;
                Ok(vec![Inst::Csr {
                    op: CsrOp::Rw,
                    rd: ZERO,
                    rs1: self.reg(&ops[1], line)?,
                    csr,
                }])
            }
            // --- pseudo-instructions -------------------------------------------
            "nop" => Ok(vec![Inst::AluImm {
                op: AluOp::Add,
                rd: ZERO,
                rs1: ZERO,
                imm: 0,
            }]),
            "mv" => {
                want(2)?;
                Ok(vec![Inst::AluImm {
                    op: AluOp::Add,
                    rd: self.reg(&ops[0], line)?,
                    rs1: self.reg(&ops[1], line)?,
                    imm: 0,
                }])
            }
            "not" => {
                want(2)?;
                Ok(vec![Inst::AluImm {
                    op: AluOp::Xor,
                    rd: self.reg(&ops[0], line)?,
                    rs1: self.reg(&ops[1], line)?,
                    imm: -1,
                }])
            }
            "neg" => {
                want(2)?;
                Ok(vec![Inst::Alu {
                    op: AluOp::Sub,
                    rd: self.reg(&ops[0], line)?,
                    rs1: ZERO,
                    rs2: self.reg(&ops[1], line)?,
                }])
            }
            "seqz" => {
                want(2)?;
                Ok(vec![Inst::AluImm {
                    op: AluOp::Sltu,
                    rd: self.reg(&ops[0], line)?,
                    rs1: self.reg(&ops[1], line)?,
                    imm: 1,
                }])
            }
            "snez" => {
                want(2)?;
                Ok(vec![Inst::Alu {
                    op: AluOp::Sltu,
                    rd: self.reg(&ops[0], line)?,
                    rs1: ZERO,
                    rs2: self.reg(&ops[1], line)?,
                }])
            }
            "li" => {
                want(2)?;
                let rd = self.reg(&ops[0], line)?;
                let val = self.resolve(&ops[1], line)?;
                if !(-(1i64 << 31)..(1i64 << 32)).contains(&val) {
                    return err(line, format!("li immediate {val} out of 32-bit range"));
                }
                if fits12(val) {
                    Ok(vec![Inst::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: ZERO,
                        imm: val as i32,
                    }])
                } else {
                    let (hi, lo) = hi_lo(val as u32);
                    Ok(vec![
                        Inst::Lui { rd, imm: hi },
                        Inst::AluImm {
                            op: AluOp::Add,
                            rd,
                            rs1: rd,
                            imm: lo,
                        },
                    ])
                }
            }
            "la" => {
                want(2)?;
                let rd = self.reg(&ops[0], line)?;
                let val = self.resolve(&ops[1], line)? as u32;
                let (hi, lo) = hi_lo(val);
                Ok(vec![
                    Inst::Lui { rd, imm: hi },
                    Inst::AluImm {
                        op: AluOp::Add,
                        rd,
                        rs1: rd,
                        imm: lo,
                    },
                ])
            }
            "j" => {
                want(1)?;
                Ok(vec![Inst::Jal {
                    rd: ZERO,
                    offset: self.jump_target(&ops[0], pc, line)?,
                }])
            }
            "jr" => {
                want(1)?;
                Ok(vec![Inst::Jalr {
                    rd: ZERO,
                    rs1: self.reg(&ops[0], line)?,
                    offset: 0,
                }])
            }
            "ret" => Ok(vec![Inst::Jalr {
                rd: ZERO,
                rs1: RA,
                offset: 0,
            }]),
            "call" => {
                want(1)?;
                Ok(vec![Inst::Jal {
                    rd: RA,
                    offset: self.jump_target(&ops[0], pc, line)?,
                }])
            }
            _ => err(line, format!("unknown mnemonic `{mnemonic}`")),
        }
    }

    fn pass1(&mut self) -> Result<(), AsmError> {
        let mut pc: u32 = 0;
        let lines = self.lines.clone();
        for line in &lines {
            // `.equ` defines constants usable in later sizing decisions.
            if let Some(Stmt::Directive { name, operands }) = &line.stmt {
                if name == ".equ" || name == ".set" {
                    if operands.len() != 2 {
                        return err(line.number, "`.equ` expects name, value");
                    }
                    let v = self.resolve(&operands[1], line.number)?;
                    self.equs.insert(operands[0].clone(), v);
                    continue;
                }
            }
            for label in &line.labels {
                if self.symbols.insert(label.clone(), pc).is_some() {
                    return err(line.number, format!("duplicate label `{label}`"));
                }
            }
            pc = pc
                .checked_add(self.stmt_size(line, pc)?)
                .ok_or_else(|| AsmError {
                    line: line.number,
                    message: "address overflow".into(),
                })?;
        }
        Ok(())
    }

    fn pass2(&self) -> Result<Image, AsmError> {
        let mut data: Vec<u8> = Vec::new();
        let mut pc: u32 = 0;
        let mut base: Option<u32> = None;
        for line in &self.lines {
            let Some(stmt) = &line.stmt else { continue };
            match stmt {
                Stmt::Directive { name, operands } => match name.as_str() {
                    ".equ" | ".set" | ".text" | ".data" | ".global" | ".globl" | ".section" => {}
                    ".org" => {
                        let target = self
                            .resolve(operands.first().map_or("", String::as_str), line.number)?
                            as u32;
                        if base.is_none() && data.is_empty() {
                            base = Some(target);
                            pc = target;
                        } else {
                            if target < pc {
                                return err(line.number, ".org moves backwards");
                            }
                            data.resize(data.len() + (target - pc) as usize, 0);
                            pc = target;
                        }
                    }
                    ".align" => {
                        let n = operands
                            .first()
                            .map_or(Ok(2), |s| self.resolve(s, line.number))?;
                        let align = 1u32 << n;
                        let pad = (align - (pc % align)) % align;
                        data.resize(data.len() + pad as usize, 0);
                        pc += pad;
                    }
                    ".word" => {
                        for op in operands {
                            let v = self.resolve(op, line.number)? as u32;
                            data.extend_from_slice(&v.to_le_bytes());
                            pc += 4;
                        }
                    }
                    ".half" => {
                        for op in operands {
                            let v = self.resolve(op, line.number)? as u16;
                            data.extend_from_slice(&v.to_le_bytes());
                            pc += 2;
                        }
                    }
                    ".byte" => {
                        for op in operands {
                            let v = self.resolve(op, line.number)? as u8;
                            data.push(v);
                            pc += 1;
                        }
                    }
                    ".space" => {
                        let n = self
                            .resolve(operands.first().map_or("0", String::as_str), line.number)?
                            as u32;
                        data.resize(data.len() + n as usize, 0);
                        pc += n;
                    }
                    other => return err(line.number, format!("unknown directive `{other}`")),
                },
                Stmt::Inst { mnemonic, operands } => {
                    let insts = self.encode_inst(mnemonic, operands, pc, line.number)?;
                    // Pseudo-expansion size must match pass 1.
                    let expect = self.stmt_size(line, pc)?;
                    if insts.len() as u32 * 4 != expect {
                        return err(
                            line.number,
                            format!(
                                "internal: pass1 sized `{mnemonic}` at {expect} bytes, pass2 at {}",
                                insts.len() * 4
                            ),
                        );
                    }
                    for inst in insts {
                        data.extend_from_slice(&encode(&inst).to_le_bytes());
                        pc += 4;
                    }
                }
            }
        }
        let _ = self.source;
        Ok(Image {
            base: base.unwrap_or(0),
            data,
            symbols: self.symbols.clone(),
        })
    }
}

/// Assemble a complete source file into a flat [`Image`].
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax error,
/// unknown mnemonic/register/CSR, undefined symbol, or out-of-range
/// immediate.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), rvnv_riscv::AsmError> {
/// let image = rvnv_riscv::assemble(
///     "   li   a0, 0x100000   # DRAM base
///         lw   t0, 0(a0)
///         ebreak",
/// )?;
/// assert_eq!(image.len(), 16);
/// # Ok(())
/// # }
/// ```
pub fn assemble(source: &str) -> Result<Image, AsmError> {
    let mut asm = Assembler::parse(source)?;
    asm.pass1()?;
    asm.pass2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn words(src: &str) -> Vec<u32> {
        assemble(src).unwrap().words()
    }

    #[test]
    fn empty_and_comment_only_sources() {
        assert!(assemble("").unwrap().is_empty());
        assert!(assemble("# just a comment\n   // another\n")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn basic_instructions_round_trip_through_decoder() {
        let ws = words(
            "   addi a0, zero, 5
                slli a0, a0, 3
                sw   a0, 8(sp)
                lw   a1, 8(sp)
                ebreak",
        );
        assert_eq!(ws.len(), 5);
        for (i, w) in ws.iter().enumerate() {
            decode(*w, (i * 4) as u32).unwrap();
        }
    }

    #[test]
    fn li_small_is_one_instruction() {
        assert_eq!(words("li a0, 100").len(), 1);
        assert_eq!(words("li a0, -2048").len(), 1);
    }

    #[test]
    fn li_large_is_lui_addi_pair() {
        let ws = words("li a0, 0x12345678");
        assert_eq!(ws.len(), 2);
        // Execute mentally: lui 0x12345 + 0x1000 adjust? check via decode.
        let lui = decode(ws[0], 0).unwrap();
        let addi = decode(ws[1], 4).unwrap();
        let (hi, lo) = match (lui, addi) {
            (
                Inst::Lui { imm, .. },
                Inst::AluImm {
                    op: AluOp::Add,
                    imm: lo,
                    ..
                },
            ) => (imm, lo),
            other => panic!("unexpected expansion {other:?}"),
        };
        assert_eq!(hi.wrapping_add(lo as u32), 0x1234_5678);
    }

    #[test]
    fn li_with_high_low_half_adjustment() {
        // 0xFFF in the low bits forces the +1 carry into LUI.
        let ws = words("li t0, 0x00100FFF");
        let lui = decode(ws[0], 0).unwrap();
        let addi = decode(ws[1], 4).unwrap();
        if let (Inst::Lui { imm, .. }, Inst::AluImm { imm: lo, .. }) = (lui, addi) {
            assert_eq!(imm.wrapping_add(lo as u32), 0x0010_0FFF);
        } else {
            panic!("bad expansion");
        }
    }

    #[test]
    fn labels_and_branches() {
        let img = assemble(
            "start:  li   t0, 3
             loop:   addi t0, t0, -1
                     bnez t0, loop
                     j    done
                     nop
             done:   ebreak",
        )
        .unwrap();
        assert_eq!(img.symbol("start"), Some(0));
        assert_eq!(img.symbol("loop"), Some(4));
        assert_eq!(img.symbol("done"), Some(20));
    }

    #[test]
    fn forward_references_resolve() {
        let img = assemble(
            "        j    end
                     nop
             end:    ebreak",
        )
        .unwrap();
        let ws = img.words();
        assert_eq!(
            decode(ws[0], 0).unwrap(),
            Inst::Jal {
                rd: ZERO,
                offset: 8
            }
        );
    }

    #[test]
    fn equ_constants_and_expressions() {
        let img = assemble(
            "   .equ DRAM_BASE, 0x100000
                .equ OFFSET, 16
                li a0, DRAM_BASE
                lw t0, OFFSET(a0)
                .word DRAM_BASE+4
            ",
        )
        .unwrap();
        let ws = img.words();
        assert_eq!(ws.len(), 4); // li expands to 2
        assert_eq!(ws[3], 0x0010_0004);
    }

    #[test]
    fn hi_lo_operators() {
        let ws = words(
            "   lui a0, %hi(0x12345FFF)
                addi a0, a0, %lo(0x12345FFF)",
        );
        let lui = decode(ws[0], 0).unwrap();
        let addi = decode(ws[1], 4).unwrap();
        if let (Inst::Lui { imm, .. }, Inst::AluImm { imm: lo, .. }) = (lui, addi) {
            assert_eq!(imm.wrapping_add(lo as u32), 0x1234_5FFF);
        } else {
            panic!("bad %hi/%lo");
        }
    }

    #[test]
    fn data_directives() {
        let img = assemble(
            "   .byte 1, 2, 3
                .align 2
                .half 0x1234
                .space 2
                .word 0xAABBCCDD",
        )
        .unwrap();
        let b = img.bytes();
        assert_eq!(&b[0..3], &[1, 2, 3]);
        assert_eq!(b[3], 0); // align pad
        assert_eq!(&b[4..6], &[0x34, 0x12]);
        assert_eq!(&b[6..8], &[0, 0]);
        assert_eq!(&b[8..12], &[0xDD, 0xCC, 0xBB, 0xAA]);
    }

    #[test]
    fn org_sets_base_and_pads() {
        let img = assemble(
            "   .org 0x80
                nop
                .org 0x90
                ebreak",
        )
        .unwrap();
        assert_eq!(img.base(), 0x80);
        assert_eq!(img.len(), 0x14); // 0x80..=0x90 + 4
    }

    #[test]
    fn csr_aliases() {
        let ws = words(
            "   csrr t0, mcycle
                csrw mscratch, t0
                csrrs t1, 0xB02, zero",
        );
        assert_eq!(ws.len(), 3);
        assert!(matches!(
            decode(ws[0], 0).unwrap(),
            Inst::Csr {
                op: CsrOp::Rs,
                csr: 0xB00,
                ..
            }
        ));
        assert!(matches!(
            decode(ws[2], 8).unwrap(),
            Inst::Csr { csr: 0xB02, .. }
        ));
    }

    #[test]
    fn error_reporting_includes_line() {
        let e = assemble("nop\n  frobnicate a0, a1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("frobnicate"));
        let e = assemble("addi a0, zero, 5000").unwrap_err();
        assert!(e.message.contains("12-bit"));
        let e = assemble("bne t0, t1, nowhere").unwrap_err();
        assert!(e.message.contains("undefined symbol"));
        let e = assemble("lw t0, 4[a0]").unwrap_err();
        assert!(e.message.contains("offset(reg)"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn branch_range_checked() {
        let mut src = String::from("start: nop\n");
        for _ in 0..2000 {
            src.push_str("nop\n");
        }
        src.push_str("beq zero, zero, start\n");
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn pseudo_instructions_execute_correctly() {
        use crate::cpu::Core;
        use rvnv_bus::sram::Sram;
        let img = assemble(
            "       li   a0, 7
                    mv   a1, a0
                    neg  a2, a0
                    not  a3, zero
                    seqz a4, zero
                    snez a5, a0
                    call f
                    j    done
            f:      addi a1, a1, 1
                    ret
            done:   ebreak",
        )
        .unwrap();
        let mut core = Core::new(Sram::rom(img.bytes()), Sram::new(64));
        core.run(100).unwrap();
        assert_eq!(core.read_reg(crate::reg::A0), 7);
        assert_eq!(core.read_reg(crate::reg::A1), 8);
        assert_eq!(core.read_reg(crate::reg::A2), (-7i32) as u32);
        assert_eq!(core.read_reg(crate::reg::A3), u32::MAX);
        assert_eq!(core.read_reg(crate::reg::A4), 1);
        assert_eq!(core.read_reg(crate::reg::A5), 1);
    }
}
