//! RV32IM instruction-set simulator modelling the Codasip µRISC-V core.
//!
//! The paper couples NVDLA to "a 32-bit, 4-stage pipelined RISC-V core
//! from Codasip called µRISC-V" that programs the accelerator with plain
//! load/store instructions over AHB-Lite. This crate provides:
//!
//! * [`decode()`]/[`encode()`] — RV32IM + Zicsr instruction codecs,
//! * [`cpu`] — the core itself, with a 4-stage pipeline timing model
//!   ([`pipeline`]) and an AHB-Lite data port into the system bus,
//! * [`csr`] — the machine counters (`mcycle`, `minstret`) bare-metal
//!   firmware uses for self-timing,
//! * [`asm`] — a two-pass assembler (plus [`disasm`]) for the generated
//!   bare-metal programs, supporting the pseudo-instructions the paper's
//!   toolflow emits (`li`, `la`, `j`, `call`, …).
//!
//! # Example
//!
//! ```
//! use rvnv_riscv::asm::assemble;
//! use rvnv_riscv::cpu::{Core, StopReason};
//! use rvnv_bus::sram::Sram;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let image = assemble(
//!     "   li   t0, 21
//!         slli t1, t0, 1      # t1 = 42
//!         ebreak
//!     ",
//! )?;
//! let mut core = Core::new(Sram::rom(image.bytes()), Sram::new(1024));
//! let stop = core.run(1_000)?;
//! assert_eq!(stop, StopReason::Ebreak);
//! assert_eq!(core.read_reg(rvnv_riscv::reg::T1), 42);
//! # Ok(())
//! # }
//! ```

pub mod asm;
pub mod block_cache;
pub mod cpu;
pub mod csr;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod inst;
pub mod pipeline;
pub mod reg;

pub use asm::{assemble, AsmError, Image};
pub use block_cache::{BlockCache, BlockCacheStats};
pub use cpu::{Core, CpuError, StopReason};
pub use decode::{decode, DecodeError};
pub use encode::encode;
pub use inst::Inst;
pub use reg::Reg;
