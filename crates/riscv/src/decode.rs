//! RV32IM + Zicsr instruction decoder.

use std::error::Error;
use std::fmt;

use crate::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use crate::reg::Reg;

/// Decoding failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The raw instruction word.
    pub word: u32,
    /// Address it was fetched from, if known.
    pub pc: u32,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "illegal instruction {:#010x} at pc {:#010x}",
            self.word, self.pc
        )
    }
}

impl Error for DecodeError {}

#[inline]
fn rd(word: u32) -> Reg {
    Reg::new(((word >> 7) & 0x1F) as u8)
}
#[inline]
fn rs1(word: u32) -> Reg {
    Reg::new(((word >> 15) & 0x1F) as u8)
}
#[inline]
fn rs2(word: u32) -> Reg {
    Reg::new(((word >> 20) & 0x1F) as u8)
}
#[inline]
fn funct3(word: u32) -> u32 {
    (word >> 12) & 0x7
}
#[inline]
fn funct7(word: u32) -> u32 {
    word >> 25
}

/// Sign-extended I-type immediate.
#[inline]
fn imm_i(word: u32) -> i32 {
    (word as i32) >> 20
}

/// Sign-extended S-type immediate.
#[inline]
fn imm_s(word: u32) -> i32 {
    (((word & 0xFE00_0000) as i32) >> 20) | (((word >> 7) & 0x1F) as i32)
}

/// Sign-extended B-type immediate.
#[inline]
fn imm_b(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 19)
        | (((word >> 7) & 0x1) << 11) as i32
        | (((word >> 25) & 0x3F) << 5) as i32
        | (((word >> 8) & 0xF) << 1) as i32
}

/// U-type immediate (already shifted).
#[inline]
fn imm_u(word: u32) -> u32 {
    word & 0xFFFF_F000
}

/// Sign-extended J-type immediate.
#[inline]
fn imm_j(word: u32) -> i32 {
    (((word & 0x8000_0000) as i32) >> 11)
        | ((word & 0x000F_F000) as i32)
        | (((word >> 20) & 0x1) << 11) as i32
        | (((word >> 21) & 0x3FF) << 1) as i32
}

/// Decode one 32-bit instruction word.
///
/// `pc` is used only for error reporting.
///
/// # Errors
///
/// Returns [`DecodeError`] for any encoding outside RV32IM + Zicsr +
/// `mret`/`wfi`.
pub fn decode(word: u32, pc: u32) -> Result<Inst, DecodeError> {
    let err = Err(DecodeError { word, pc });
    let opcode = word & 0x7F;
    match opcode {
        0b011_0111 => Ok(Inst::Lui {
            rd: rd(word),
            imm: imm_u(word),
        }),
        0b001_0111 => Ok(Inst::Auipc {
            rd: rd(word),
            imm: imm_u(word),
        }),
        0b110_1111 => Ok(Inst::Jal {
            rd: rd(word),
            offset: imm_j(word),
        }),
        0b110_0111 => {
            if funct3(word) != 0 {
                return err;
            }
            Ok(Inst::Jalr {
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0b110_0011 => {
            let op = match funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return err,
            };
            Ok(Inst::Branch {
                op,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_b(word),
            })
        }
        0b000_0011 => {
            let width = match funct3(word) {
                0b000 => MemWidth::Byte,
                0b001 => MemWidth::Half,
                0b010 => MemWidth::Word,
                0b100 => MemWidth::ByteU,
                0b101 => MemWidth::HalfU,
                _ => return err,
            };
            Ok(Inst::Load {
                width,
                rd: rd(word),
                rs1: rs1(word),
                offset: imm_i(word),
            })
        }
        0b010_0011 => {
            let width = match funct3(word) {
                0b000 => MemWidth::Byte,
                0b001 => MemWidth::Half,
                0b010 => MemWidth::Word,
                _ => return err,
            };
            Ok(Inst::Store {
                width,
                rs1: rs1(word),
                rs2: rs2(word),
                offset: imm_s(word),
            })
        }
        0b001_0011 => {
            let f3 = funct3(word);
            let op = match f3 {
                0b000 => AluOp::Add,
                0b010 => AluOp::Slt,
                0b011 => AluOp::Sltu,
                0b100 => AluOp::Xor,
                0b110 => AluOp::Or,
                0b111 => AluOp::And,
                0b001 => {
                    if funct7(word) != 0 {
                        return err;
                    }
                    AluOp::Sll
                }
                0b101 => match funct7(word) {
                    0b000_0000 => AluOp::Srl,
                    0b010_0000 => AluOp::Sra,
                    _ => return err,
                },
                _ => return err,
            };
            let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                ((word >> 20) & 0x1F) as i32
            } else {
                imm_i(word)
            };
            Ok(Inst::AluImm {
                op,
                rd: rd(word),
                rs1: rs1(word),
                imm,
            })
        }
        0b011_0011 => {
            let f3 = funct3(word);
            let f7 = funct7(word);
            if f7 == 0b000_0001 {
                let op = match f3 {
                    0b000 => MulOp::Mul,
                    0b001 => MulOp::Mulh,
                    0b010 => MulOp::Mulhsu,
                    0b011 => MulOp::Mulhu,
                    0b100 => MulOp::Div,
                    0b101 => MulOp::Divu,
                    0b110 => MulOp::Rem,
                    0b111 => MulOp::Remu,
                    _ => return err,
                };
                return Ok(Inst::Mul {
                    op,
                    rd: rd(word),
                    rs1: rs1(word),
                    rs2: rs2(word),
                });
            }
            let op = match (f3, f7) {
                (0b000, 0b000_0000) => AluOp::Add,
                (0b000, 0b010_0000) => AluOp::Sub,
                (0b001, 0b000_0000) => AluOp::Sll,
                (0b010, 0b000_0000) => AluOp::Slt,
                (0b011, 0b000_0000) => AluOp::Sltu,
                (0b100, 0b000_0000) => AluOp::Xor,
                (0b101, 0b000_0000) => AluOp::Srl,
                (0b101, 0b010_0000) => AluOp::Sra,
                (0b110, 0b000_0000) => AluOp::Or,
                (0b111, 0b000_0000) => AluOp::And,
                _ => return err,
            };
            Ok(Inst::Alu {
                op,
                rd: rd(word),
                rs1: rs1(word),
                rs2: rs2(word),
            })
        }
        0b000_1111 => Ok(Inst::Fence),
        0b111_0011 => {
            let f3 = funct3(word);
            match f3 {
                0b000 => match word {
                    0x0000_0073 => Ok(Inst::Ecall),
                    0x0010_0073 => Ok(Inst::Ebreak),
                    0x3020_0073 => Ok(Inst::Mret),
                    0x1050_0073 => Ok(Inst::Wfi),
                    _ => err,
                },
                0b001..=0b011 => {
                    let op = match f3 {
                        0b001 => CsrOp::Rw,
                        0b010 => CsrOp::Rs,
                        _ => CsrOp::Rc,
                    };
                    Ok(Inst::Csr {
                        op,
                        rd: rd(word),
                        rs1: rs1(word),
                        csr: (word >> 20) as u16,
                    })
                }
                0b101..=0b111 => {
                    let op = match f3 {
                        0b101 => CsrOp::Rw,
                        0b110 => CsrOp::Rs,
                        _ => CsrOp::Rc,
                    };
                    Ok(Inst::CsrImm {
                        op,
                        rd: rd(word),
                        imm: ((word >> 15) & 0x1F) as u8,
                        csr: (word >> 20) as u16,
                    })
                }
                _ => err,
            }
        }
        _ => err,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reg::{A0, RA, SP, T0, ZERO};

    #[test]
    fn decode_canonical_words() {
        // addi sp, sp, -16  => 0xFF010113
        assert_eq!(
            decode(0xFF01_0113, 0).unwrap(),
            Inst::AluImm {
                op: AluOp::Add,
                rd: SP,
                rs1: SP,
                imm: -16
            }
        );
        // lui a0, 0x12345 => 0x12345537
        assert_eq!(
            decode(0x1234_5537, 0).unwrap(),
            Inst::Lui {
                rd: A0,
                imm: 0x1234_5000
            }
        );
        // lw t0, 8(a0) => 0x00852283
        assert_eq!(
            decode(0x0085_2283, 0).unwrap(),
            Inst::Load {
                width: MemWidth::Word,
                rd: T0,
                rs1: A0,
                offset: 8
            }
        );
        // sw t0, 12(a0) => 0x00552623
        assert_eq!(
            decode(0x0055_2623, 0).unwrap(),
            Inst::Store {
                width: MemWidth::Word,
                rs1: A0,
                rs2: T0,
                offset: 12
            }
        );
        // jal ra, +8 => 0x008000EF
        assert_eq!(
            decode(0x0080_00EF, 0).unwrap(),
            Inst::Jal { rd: RA, offset: 8 }
        );
        // beq a0, zero, -4 => 0xFE050EE3
        assert_eq!(
            decode(0xFE05_0EE3, 0).unwrap(),
            Inst::Branch {
                op: BranchOp::Eq,
                rs1: A0,
                rs2: ZERO,
                offset: -4
            }
        );
        // ecall / ebreak
        assert_eq!(decode(0x0000_0073, 0).unwrap(), Inst::Ecall);
        assert_eq!(decode(0x0010_0073, 0).unwrap(), Inst::Ebreak);
        // mul a0, a0, t0 => funct7=1
        assert_eq!(
            decode(0x0255_0533, 0).unwrap(),
            Inst::Mul {
                op: MulOp::Mul,
                rd: A0,
                rs1: A0,
                rs2: T0
            }
        );
    }

    #[test]
    fn negative_immediates_sign_extend() {
        // lw t0, -4(a0) => imm 0xffc
        let i = decode(0xFFC5_2283, 0).unwrap();
        assert_eq!(
            i,
            Inst::Load {
                width: MemWidth::Word,
                rd: T0,
                rs1: A0,
                offset: -4
            }
        );
    }

    #[test]
    fn illegal_instructions_rejected() {
        assert!(decode(0x0000_0000, 0x40).is_err());
        assert!(decode(0xFFFF_FFFF, 0).is_err());
        // Bad funct7 on srai-family.
        assert!(decode(0x8000_5013 | (1 << 25), 0).is_err());
        let e = decode(0, 0x40).unwrap_err();
        assert!(e.to_string().contains("0x00000040"));
    }

    #[test]
    fn csr_forms() {
        // csrrs t0, mcycle(0xB00), zero => 0xB00022F3
        let i = decode(0xB000_22F3, 0).unwrap();
        assert_eq!(
            i,
            Inst::Csr {
                op: CsrOp::Rs,
                rd: T0,
                rs1: ZERO,
                csr: 0xB00
            }
        );
        // csrrwi zero, 0x300, 5
        let i = decode(0x3002_D073, 0).unwrap();
        assert_eq!(
            i,
            Inst::CsrImm {
                op: CsrOp::Rw,
                rd: ZERO,
                imm: 5,
                csr: 0x300
            }
        );
    }
}
