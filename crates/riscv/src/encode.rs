//! RV32IM + Zicsr instruction encoder (the assembler back-end).

use crate::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use crate::reg::Reg;

#[inline]
fn r(reg: Reg) -> u32 {
    u32::from(reg.index())
}

fn enc_r(funct7: u32, rs2: Reg, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    (funct7 << 25) | (r(rs2) << 20) | (r(rs1) << 15) | (funct3 << 12) | (r(rd) << 7) | opcode
}

fn enc_i(imm: i32, rs1: Reg, funct3: u32, rd: Reg, opcode: u32) -> u32 {
    ((imm as u32 & 0xFFF) << 20) | (r(rs1) << 15) | (funct3 << 12) | (r(rd) << 7) | opcode
}

fn enc_s(imm: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = imm as u32;
    ((imm & 0xFE0) << 20)
        | (r(rs2) << 20)
        | (r(rs1) << 15)
        | (funct3 << 12)
        | ((imm & 0x1F) << 7)
        | opcode
}

fn enc_b(offset: i32, rs2: Reg, rs1: Reg, funct3: u32, opcode: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3F) << 25)
        | (r(rs2) << 20)
        | (r(rs1) << 15)
        | (funct3 << 12)
        | (((imm >> 1) & 0xF) << 8)
        | (((imm >> 11) & 1) << 7)
        | opcode
}

fn enc_u(imm: u32, rd: Reg, opcode: u32) -> u32 {
    (imm & 0xFFFF_F000) | (r(rd) << 7) | opcode
}

fn enc_j(offset: i32, rd: Reg, opcode: u32) -> u32 {
    let imm = offset as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3FF) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xFF) << 12)
        | (r(rd) << 7)
        | opcode
}

fn alu_funct3(op: AluOp) -> u32 {
    match op {
        AluOp::Add | AluOp::Sub => 0b000,
        AluOp::Sll => 0b001,
        AluOp::Slt => 0b010,
        AluOp::Sltu => 0b011,
        AluOp::Xor => 0b100,
        AluOp::Srl | AluOp::Sra => 0b101,
        AluOp::Or => 0b110,
        AluOp::And => 0b111,
    }
}

/// Encode a decoded instruction back to its 32-bit word.
///
/// Together with [`crate::decode::decode`] this forms an exact round trip
/// for all canonical encodings (property-tested).
#[must_use]
pub fn encode(inst: &Inst) -> u32 {
    match *inst {
        Inst::Lui { rd, imm } => enc_u(imm, rd, 0b011_0111),
        Inst::Auipc { rd, imm } => enc_u(imm, rd, 0b001_0111),
        Inst::Jal { rd, offset } => enc_j(offset, rd, 0b110_1111),
        Inst::Jalr { rd, rs1, offset } => enc_i(offset, rs1, 0b000, rd, 0b110_0111),
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            enc_b(offset, rs2, rs1, f3, 0b110_0011)
        }
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => {
            let f3 = match width {
                MemWidth::Byte => 0b000,
                MemWidth::Half => 0b001,
                MemWidth::Word => 0b010,
                MemWidth::ByteU => 0b100,
                MemWidth::HalfU => 0b101,
            };
            enc_i(offset, rs1, f3, rd, 0b000_0011)
        }
        Inst::Store {
            width,
            rs1,
            rs2,
            offset,
        } => {
            let f3 = match width {
                MemWidth::Byte | MemWidth::ByteU => 0b000,
                MemWidth::Half | MemWidth::HalfU => 0b001,
                MemWidth::Word => 0b010,
            };
            enc_s(offset, rs2, rs1, f3, 0b010_0011)
        }
        Inst::AluImm { op, rd, rs1, imm } => {
            let f3 = alu_funct3(op);
            match op {
                AluOp::Sll | AluOp::Srl => enc_i(imm & 0x1F, rs1, f3, rd, 0b001_0011),
                AluOp::Sra => enc_i((imm & 0x1F) | 0x400, rs1, f3, rd, 0b001_0011),
                // `subi` does not exist; Sub must not appear as AluImm.
                AluOp::Sub => panic!("subi is not encodable"),
                _ => enc_i(imm, rs1, f3, rd, 0b001_0011),
            }
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            let f7 = match op {
                AluOp::Sub | AluOp::Sra => 0b010_0000,
                _ => 0b000_0000,
            };
            enc_r(f7, rs2, rs1, alu_funct3(op), rd, 0b011_0011)
        }
        Inst::Mul { op, rd, rs1, rs2 } => {
            let f3 = match op {
                MulOp::Mul => 0b000,
                MulOp::Mulh => 0b001,
                MulOp::Mulhsu => 0b010,
                MulOp::Mulhu => 0b011,
                MulOp::Div => 0b100,
                MulOp::Divu => 0b101,
                MulOp::Rem => 0b110,
                MulOp::Remu => 0b111,
            };
            enc_r(0b000_0001, rs2, rs1, f3, rd, 0b011_0011)
        }
        Inst::Fence => 0x0FF0_000F,
        Inst::Ecall => 0x0000_0073,
        Inst::Ebreak => 0x0010_0073,
        Inst::Mret => 0x3020_0073,
        Inst::Wfi => 0x1050_0073,
        Inst::Csr { op, rd, rs1, csr } => {
            let f3 = match op {
                CsrOp::Rw => 0b001,
                CsrOp::Rs => 0b010,
                CsrOp::Rc => 0b011,
            };
            (u32::from(csr) << 20) | (r(rs1) << 15) | (f3 << 12) | (r(rd) << 7) | 0b111_0011
        }
        Inst::CsrImm { op, rd, imm, csr } => {
            let f3 = match op {
                CsrOp::Rw => 0b101,
                CsrOp::Rs => 0b110,
                CsrOp::Rc => 0b111,
            };
            (u32::from(csr) << 20)
                | (u32::from(imm & 0x1F) << 15)
                | (f3 << 12)
                | (r(rd) << 7)
                | 0b111_0011
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;
    use crate::reg::{A0, RA, SP, T0, ZERO};

    #[test]
    fn encode_matches_known_words() {
        assert_eq!(
            encode(&Inst::AluImm {
                op: AluOp::Add,
                rd: SP,
                rs1: SP,
                imm: -16
            }),
            0xFF01_0113
        );
        assert_eq!(encode(&Inst::Jal { rd: RA, offset: 8 }), 0x0080_00EF);
        assert_eq!(encode(&Inst::Ebreak), 0x0010_0073);
    }

    #[test]
    fn round_trip_representative_set() {
        let insts = [
            Inst::Lui {
                rd: A0,
                imm: 0xDEAD_B000,
            },
            Inst::Auipc {
                rd: T0,
                imm: 0x1000,
            },
            Inst::Jal {
                rd: ZERO,
                offset: -2048,
            },
            Inst::Jalr {
                rd: RA,
                rs1: A0,
                offset: 44,
            },
            Inst::Branch {
                op: BranchOp::Geu,
                rs1: T0,
                rs2: A0,
                offset: 4094,
            },
            Inst::Load {
                width: MemWidth::HalfU,
                rd: T0,
                rs1: SP,
                offset: -1,
            },
            Inst::Store {
                width: MemWidth::Byte,
                rs1: SP,
                rs2: T0,
                offset: 2047,
            },
            Inst::AluImm {
                op: AluOp::Sra,
                rd: A0,
                rs1: A0,
                imm: 31,
            },
            Inst::Alu {
                op: AluOp::Sub,
                rd: A0,
                rs1: T0,
                rs2: SP,
            },
            Inst::Mul {
                op: MulOp::Remu,
                rd: A0,
                rs1: A0,
                rs2: T0,
            },
            Inst::Fence,
            Inst::Ecall,
            Inst::Ebreak,
            Inst::Mret,
            Inst::Wfi,
            Inst::Csr {
                op: CsrOp::Rw,
                rd: A0,
                rs1: T0,
                csr: 0x341,
            },
            Inst::CsrImm {
                op: CsrOp::Rc,
                rd: ZERO,
                imm: 31,
                csr: 0x300,
            },
        ];
        for inst in insts {
            let word = encode(&inst);
            let back = decode(word, 0).unwrap_or_else(|e| panic!("{inst:?}: {e}"));
            assert_eq!(back, inst, "word {word:#010x}");
        }
    }

    #[test]
    #[should_panic(expected = "subi")]
    fn sub_immediate_is_rejected() {
        let _ = encode(&Inst::AluImm {
            op: AluOp::Sub,
            rd: A0,
            rs1: A0,
            imm: 1,
        });
    }
}
