//! Machine-mode control and status registers.
//!
//! Bare-metal firmware has no OS clock, so it times itself with the
//! `mcycle`/`minstret` counters — the mechanism our generated programs
//! use to report per-layer latencies.

use std::collections::BTreeMap;

/// CSR address of `mstatus`.
pub const MSTATUS: u16 = 0x300;
/// CSR address of `mtvec`.
pub const MTVEC: u16 = 0x305;
/// CSR address of `mscratch`.
pub const MSCRATCH: u16 = 0x340;
/// CSR address of `mepc`.
pub const MEPC: u16 = 0x341;
/// CSR address of `mcause`.
pub const MCAUSE: u16 = 0x342;
/// CSR address of `mcycle` (low 32 bits).
pub const MCYCLE: u16 = 0xB00;
/// CSR address of `minstret` (low 32 bits).
pub const MINSTRET: u16 = 0xB02;
/// CSR address of `mcycleh` (high 32 bits).
pub const MCYCLEH: u16 = 0xB80;
/// CSR address of `minstreth` (high 32 bits).
pub const MINSTRETH: u16 = 0xB82;
/// CSR address of `mhartid` (read-only zero: single hart).
pub const MHARTID: u16 = 0xF14;

/// The CSR file.
///
/// `mcycle`/`minstret` shadow the core's performance counters and are
/// refreshed by the core before each CSR read.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CsrFile {
    regs: BTreeMap<u16, u32>,
    /// 64-bit cycle counter, maintained by the core.
    pub cycle: u64,
    /// 64-bit retired-instruction counter, maintained by the core.
    pub instret: u64,
}

impl CsrFile {
    /// A fresh CSR file with all registers zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a CSR. Unimplemented CSRs read as zero (matching the
    /// permissive behaviour of small embedded cores).
    #[must_use]
    pub fn read(&self, csr: u16) -> u32 {
        match csr {
            MCYCLE => self.cycle as u32,
            MCYCLEH => (self.cycle >> 32) as u32,
            MINSTRET => self.instret as u32,
            MINSTRETH => (self.instret >> 32) as u32,
            MHARTID => 0,
            _ => self.regs.get(&csr).copied().unwrap_or(0),
        }
    }

    /// Write a CSR. Writes to the hardwired counters and `mhartid` are
    /// ignored; everything else is stored.
    pub fn write(&mut self, csr: u16, value: u32) {
        match csr {
            MCYCLE | MCYCLEH | MINSTRET | MINSTRETH | MHARTID => {}
            _ => {
                self.regs.insert(csr, value);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_shadow_core_state() {
        let mut f = CsrFile::new();
        f.cycle = 0x1_2345_6789;
        f.instret = 77;
        assert_eq!(f.read(MCYCLE), 0x2345_6789);
        assert_eq!(f.read(MCYCLEH), 1);
        assert_eq!(f.read(MINSTRET), 77);
        assert_eq!(f.read(MINSTRETH), 0);
    }

    #[test]
    fn counter_writes_ignored() {
        let mut f = CsrFile::new();
        f.write(MCYCLE, 999);
        assert_eq!(f.read(MCYCLE), 0);
    }

    #[test]
    fn scratch_registers_round_trip() {
        let mut f = CsrFile::new();
        f.write(MSCRATCH, 0xABCD);
        f.write(MEPC, 0x8000_0000);
        assert_eq!(f.read(MSCRATCH), 0xABCD);
        assert_eq!(f.read(MEPC), 0x8000_0000);
    }

    #[test]
    fn unimplemented_reads_zero() {
        let f = CsrFile::new();
        assert_eq!(f.read(0x7C0), 0);
        assert_eq!(f.read(MHARTID), 0);
    }
}
