//! Integer register file and ABI register names.

use std::fmt;

/// One of the 32 integer registers, `x0`–`x31`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(u8);

impl Reg {
    /// Construct from an index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index < 32, "register index {index} out of range");
        Reg(index)
    }

    /// Construct from an index, returning `None` when out of range.
    #[must_use]
    pub fn try_new(index: u8) -> Option<Self> {
        (index < 32).then_some(Reg(index))
    }

    /// Register index, 0–31.
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// The ABI name (`zero`, `ra`, `sp`, …).
    #[must_use]
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Parse `x5`, `t0`, `s11`, `zero`, `fp`, … into a register.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        if let Some(rest) = name.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                return Reg::try_new(n);
            }
        }
        if name == "fp" {
            return Some(S0);
        }
        ABI_NAMES
            .iter()
            .position(|&n| n == name)
            .map(|i| Reg(i as u8))
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

/// `x0`, hardwired zero.
pub const ZERO: Reg = Reg(0);
/// `x1`, return address.
pub const RA: Reg = Reg(1);
/// `x2`, stack pointer.
pub const SP: Reg = Reg(2);
/// `x3`, global pointer.
pub const GP: Reg = Reg(3);
/// `x4`, thread pointer.
pub const TP: Reg = Reg(4);
/// `x5`, temporary.
pub const T0: Reg = Reg(5);
/// `x6`, temporary.
pub const T1: Reg = Reg(6);
/// `x7`, temporary.
pub const T2: Reg = Reg(7);
/// `x8`, saved register / frame pointer.
pub const S0: Reg = Reg(8);
/// `x9`, saved register.
pub const S1: Reg = Reg(9);
/// `x10`, argument/return.
pub const A0: Reg = Reg(10);
/// `x11`, argument/return.
pub const A1: Reg = Reg(11);
/// `x12`, argument.
pub const A2: Reg = Reg(12);
/// `x13`, argument.
pub const A3: Reg = Reg(13);
/// `x14`, argument.
pub const A4: Reg = Reg(14);
/// `x15`, argument.
pub const A5: Reg = Reg(15);
/// `x28`, temporary.
pub const T3: Reg = Reg(28);
/// `x29`, temporary.
pub const T4: Reg = Reg(29);
/// `x30`, temporary.
pub const T5: Reg = Reg(30);
/// `x31`, temporary.
pub const T6: Reg = Reg(31);

/// The architectural register file (x0 hardwired to zero).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegFile {
    regs: [u32; 32],
}

impl RegFile {
    /// All registers zeroed.
    #[must_use]
    pub fn new() -> Self {
        RegFile { regs: [0; 32] }
    }

    /// Read a register (`x0` always reads 0).
    #[must_use]
    pub fn read(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Write a register (writes to `x0` are discarded).
    pub fn write(&mut self, r: Reg, value: u32) {
        if r != ZERO {
            self.regs[r.index() as usize] = value;
        }
    }
}

impl Default for RegFile {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x0_is_hardwired_zero() {
        let mut rf = RegFile::new();
        rf.write(ZERO, 0xFFFF_FFFF);
        assert_eq!(rf.read(ZERO), 0);
    }

    #[test]
    fn write_read_round_trip() {
        let mut rf = RegFile::new();
        for i in 1..32u8 {
            rf.write(Reg::new(i), u32::from(i) * 3);
        }
        for i in 1..32u8 {
            assert_eq!(rf.read(Reg::new(i)), u32::from(i) * 3);
        }
    }

    #[test]
    fn parse_numeric_and_abi_names() {
        assert_eq!(Reg::parse("x0"), Some(ZERO));
        assert_eq!(Reg::parse("x31"), Some(T6));
        assert_eq!(Reg::parse("zero"), Some(ZERO));
        assert_eq!(Reg::parse("sp"), Some(SP));
        assert_eq!(Reg::parse("fp"), Some(S0));
        assert_eq!(Reg::parse("s11"), Some(Reg::new(27)));
        assert_eq!(Reg::parse("x32"), None);
        assert_eq!(Reg::parse("q7"), None);
    }

    #[test]
    fn display_uses_abi_name() {
        assert_eq!(T0.to_string(), "t0");
        assert_eq!(Reg::new(8).to_string(), "s0");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_high_index() {
        let _ = Reg::new(32);
    }
}
