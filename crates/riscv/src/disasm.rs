//! Disassembler — the inverse of the assembler, used for firmware
//! debugging and for human-readable trace dumps.

use crate::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};

fn alu_name(op: AluOp, imm: bool) -> &'static str {
    match (op, imm) {
        (AluOp::Add, false) => "add",
        (AluOp::Add, true) => "addi",
        (AluOp::Sub, _) => "sub",
        (AluOp::Sll, false) => "sll",
        (AluOp::Sll, true) => "slli",
        (AluOp::Slt, false) => "slt",
        (AluOp::Slt, true) => "slti",
        (AluOp::Sltu, false) => "sltu",
        (AluOp::Sltu, true) => "sltiu",
        (AluOp::Xor, false) => "xor",
        (AluOp::Xor, true) => "xori",
        (AluOp::Srl, false) => "srl",
        (AluOp::Srl, true) => "srli",
        (AluOp::Sra, false) => "sra",
        (AluOp::Sra, true) => "srai",
        (AluOp::Or, false) => "or",
        (AluOp::Or, true) => "ori",
        (AluOp::And, false) => "and",
        (AluOp::And, true) => "andi",
    }
}

fn load_name(w: MemWidth) -> &'static str {
    match w {
        MemWidth::Byte => "lb",
        MemWidth::ByteU => "lbu",
        MemWidth::Half => "lh",
        MemWidth::HalfU => "lhu",
        MemWidth::Word => "lw",
    }
}

fn store_name(w: MemWidth) -> &'static str {
    match w {
        MemWidth::Byte | MemWidth::ByteU => "sb",
        MemWidth::Half | MemWidth::HalfU => "sh",
        MemWidth::Word => "sw",
    }
}

/// Render a decoded instruction as assembly text.
///
/// `pc` resolves PC-relative targets to absolute addresses.
#[must_use]
pub fn disassemble(inst: &Inst, pc: u32) -> String {
    match *inst {
        Inst::Lui { rd, imm } => format!("lui {rd}, {:#x}", imm >> 12),
        Inst::Auipc { rd, imm } => format!("auipc {rd}, {:#x}", imm >> 12),
        Inst::Jal { rd, offset } => {
            let target = pc.wrapping_add(offset as u32);
            format!("jal {rd}, {target:#x}")
        }
        Inst::Jalr { rd, rs1, offset } => format!("jalr {rd}, {offset}({rs1})"),
        Inst::Branch {
            op,
            rs1,
            rs2,
            offset,
        } => {
            let name = match op {
                BranchOp::Eq => "beq",
                BranchOp::Ne => "bne",
                BranchOp::Lt => "blt",
                BranchOp::Ge => "bge",
                BranchOp::Ltu => "bltu",
                BranchOp::Geu => "bgeu",
            };
            let target = pc.wrapping_add(offset as u32);
            format!("{name} {rs1}, {rs2}, {target:#x}")
        }
        Inst::Load {
            width,
            rd,
            rs1,
            offset,
        } => format!("{} {rd}, {offset}({rs1})", load_name(width)),
        Inst::Store {
            width,
            rs1,
            rs2,
            offset,
        } => format!("{} {rs2}, {offset}({rs1})", store_name(width)),
        Inst::AluImm { op, rd, rs1, imm } => {
            format!("{} {rd}, {rs1}, {imm}", alu_name(op, true))
        }
        Inst::Alu { op, rd, rs1, rs2 } => {
            format!("{} {rd}, {rs1}, {rs2}", alu_name(op, false))
        }
        Inst::Mul { op, rd, rs1, rs2 } => {
            let name = match op {
                MulOp::Mul => "mul",
                MulOp::Mulh => "mulh",
                MulOp::Mulhsu => "mulhsu",
                MulOp::Mulhu => "mulhu",
                MulOp::Div => "div",
                MulOp::Divu => "divu",
                MulOp::Rem => "rem",
                MulOp::Remu => "remu",
            };
            format!("{name} {rd}, {rs1}, {rs2}")
        }
        Inst::Fence => "fence".to_string(),
        Inst::Ecall => "ecall".to_string(),
        Inst::Ebreak => "ebreak".to_string(),
        Inst::Mret => "mret".to_string(),
        Inst::Wfi => "wfi".to_string(),
        Inst::Csr { op, rd, rs1, csr } => {
            let name = match op {
                CsrOp::Rw => "csrrw",
                CsrOp::Rs => "csrrs",
                CsrOp::Rc => "csrrc",
            };
            format!("{name} {rd}, {csr:#x}, {rs1}")
        }
        Inst::CsrImm { op, rd, imm, csr } => {
            let name = match op {
                CsrOp::Rw => "csrrwi",
                CsrOp::Rs => "csrrsi",
                CsrOp::Rc => "csrrci",
            };
            format!("{name} {rd}, {csr:#x}, {imm}")
        }
    }
}

/// Disassemble a flat binary into `(address, word, text)` rows.
/// Words that fail to decode are rendered as `.word`.
#[must_use]
pub fn disassemble_image(bytes: &[u8], base: u32) -> Vec<(u32, u32, String)> {
    bytes
        .chunks(4)
        .enumerate()
        .map(|(i, chunk)| {
            let mut w = [0u8; 4];
            w[..chunk.len()].copy_from_slice(chunk);
            let word = u32::from_le_bytes(w);
            let addr = base + (i * 4) as u32;
            let text = match crate::decode::decode(word, addr) {
                Ok(inst) => disassemble(&inst, addr),
                Err(_) => format!(".word {word:#010x}"),
            };
            (addr, word, text)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::decode::decode;

    #[test]
    fn disassembly_reassembles_to_same_words() {
        let src = "
            li   a0, 0x12345678
            lw   t0, 8(a0)
            sw   t0, -4(sp)
            add  t1, t0, a0
            mul  t1, t1, t0
            beq  t1, zero, 0x20
            jal  ra, 0x40
            csrrs t0, 0xb00, zero
            ebreak
        ";
        let img = assemble(src).unwrap();
        for (addr, word, text) in disassemble_image(&img.bytes(), 0) {
            let img2 = assemble(&format!(".org {addr:#x}\n{text}")).unwrap();
            assert_eq!(
                img2.words()[0],
                word,
                "at {addr:#x}: `{text}` reassembled differently"
            );
        }
    }

    #[test]
    fn pc_relative_targets_are_absolute() {
        let inst = decode(0x0080_00EF, 0x100).unwrap(); // jal ra, +8
        assert_eq!(disassemble(&inst, 0x100), "jal ra, 0x108");
    }

    #[test]
    fn bad_words_render_as_data() {
        let rows = disassemble_image(&[0, 0, 0, 0], 0);
        assert_eq!(rows[0].2, ".word 0x00000000");
    }
}
