//! Decoded-basic-block cache for the ISS hot loop.
//!
//! Warm functional inference spends most of its host time re-fetching
//! and re-decoding the same handful of firmware basic blocks — the MMIO
//! poll loop alone is three instructions executed tens of thousands of
//! times per frame. This cache decodes each basic block once (keyed by
//! its entry PC) and lets [`Core::step`](crate::cpu::Core::step) replay
//! the pre-decoded ops through the exact same execute/retire path, so
//! modeled cycles, retired-instruction counts and architectural state
//! stay bit-identical to the uncached interpreter.
//!
//! Timing is preserved analytically: at block-build time the slave's
//! fetch latency is measured per instruction word (a direct access to
//! the downstream target, bypassing the AHB port), and at replay time
//! the AHB address-phase cost is recomputed from the core's own
//! SEQ/NONSEQ fetch classifier. This is exact for instruction memories
//! whose fetch timing is a pure function of the address — true of the
//! block-RAM [`Sram`](rvnv_bus::sram::Sram) program memory the SoC
//! always uses — and it is the caller's responsibility (enforced by
//! [`Soc`](../../rvnv_soc/soc/struct.Soc.html) and pinned by the
//! determinism-fingerprint harness) not to enable the cache over a
//! stateful instruction memory.
//!
//! The cache holds *decode* state only. Writing to the instruction
//! memory through the [`Core::imem_mut`](crate::cpu::Core::imem_mut)
//! backdoor flushes every block, so self-modifying or re-loaded program
//! memory is re-decoded from the new bytes.

use crate::inst::Inst;

/// One pre-decoded instruction inside a cached block.
#[derive(Debug, Clone, Copy)]
pub struct CachedOp {
    /// PC this op was decoded at.
    pub pc: u32,
    /// Slave fetch latency measured at build time (`done_at - now` of a
    /// direct downstream access), in cycles. Replay recombines it with
    /// the AHB address-phase cost to reproduce the uncached
    /// `fetch_wait` exactly.
    pub latency: u32,
    /// The decoded instruction.
    pub inst: Inst,
}

/// Counters exposed through `rv-nvdla run --repeat` and the perf
/// harness so cache-effectiveness regressions are visible.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Block lookups that found a previously decoded block.
    pub hits: u64,
    /// Block lookups that had to decode a new block.
    pub misses: u64,
    /// Whole-cache flushes (instruction-memory writes, explicit reset).
    pub invalidations: u64,
    /// Instructions replayed from pre-decoded blocks.
    pub replayed_ops: u64,
}

impl BlockCacheStats {
    /// Counter-wise difference since `earlier` (same cache, later in
    /// time) — used to report per-inference deltas of a long-lived
    /// warm cache.
    #[must_use]
    pub fn since(&self, earlier: &BlockCacheStats) -> BlockCacheStats {
        BlockCacheStats {
            hits: self.hits - earlier.hits,
            misses: self.misses - earlier.misses,
            invalidations: self.invalidations - earlier.invalidations,
            replayed_ops: self.replayed_ops - earlier.replayed_ops,
        }
    }

    /// Publish these counters into a [`rvnv_obs::MetricsRegistry`]
    /// under the `block_cache.*` namespace. Call with a delta
    /// ([`BlockCacheStats::since`]) to publish one run's share, or with
    /// cumulative stats once.
    pub fn publish(&self, metrics: &rvnv_obs::MetricsRegistry) {
        metrics.counter("block_cache.hits", self.hits);
        metrics.counter("block_cache.misses", self.misses);
        metrics.counter("block_cache.invalidations", self.invalidations);
        metrics.counter("block_cache.replayed_ops", self.replayed_ops);
    }
}

/// Sentinel for "no block starts at this word".
const EMPTY: u32 = u32::MAX;

/// Decoded-basic-block cache, attached to a
/// [`Core`](crate::cpu::Core) via
/// [`enable_block_cache`](crate::cpu::Core::enable_block_cache) /
/// [`attach_block_cache`](crate::cpu::Core::attach_block_cache).
///
/// Blocks are keyed by entry PC in a direct-mapped table with one slot
/// per instruction word, so a branch into the *middle* of an existing
/// block simply decodes a new (overlapping) block starting at the
/// branch target — overlap is allowed and cheap.
#[derive(Debug)]
pub struct BlockCache {
    /// Word-index (`pc >> 2`) → index into `blocks`, or [`EMPTY`].
    map: Vec<u32>,
    blocks: Vec<Box<[CachedOp]>>,
    imem_bytes: usize,
    pub(crate) stats: BlockCacheStats,
}

impl BlockCache {
    /// Longest block we decode in one go; straight-line code beyond
    /// this simply continues in the next block.
    pub const MAX_BLOCK_OPS: usize = 64;

    /// Create an empty cache covering an instruction memory of
    /// `imem_bytes` bytes.
    #[must_use]
    pub fn new(imem_bytes: usize) -> Self {
        BlockCache {
            map: vec![EMPTY; imem_bytes.div_ceil(4)],
            blocks: Vec::new(),
            imem_bytes,
            stats: BlockCacheStats::default(),
        }
    }

    /// Size of the instruction memory this cache was built for.
    #[must_use]
    pub fn imem_bytes(&self) -> usize {
        self.imem_bytes
    }

    /// Accumulated counters.
    #[must_use]
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Number of decoded blocks currently resident.
    #[must_use]
    pub fn resident_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Look up the block whose entry PC is exactly `pc`.
    pub(crate) fn lookup(&self, pc: u32) -> Option<u32> {
        let idx = *self.map.get((pc >> 2) as usize)?;
        if idx == EMPTY {
            return None;
        }
        // A misaligned PC shares a map slot with its aligned neighbour;
        // the entry-PC check rejects the alias.
        (self.blocks[idx as usize][0].pc == pc).then_some(idx)
    }

    /// Register a freshly decoded block; returns its index. Blocks
    /// whose entry falls outside the map (possible only if the memory
    /// is larger than `imem_bytes`, or the entry is misaligned) are
    /// kept un-indexed and will be re-decoded on the next visit.
    pub(crate) fn insert(&mut self, ops: Vec<CachedOp>) -> u32 {
        debug_assert!(!ops.is_empty());
        let entry = ops[0].pc;
        let idx = u32::try_from(self.blocks.len()).expect("block count fits u32");
        self.blocks.push(ops.into_boxed_slice());
        if entry.is_multiple_of(4) {
            if let Some(slot) = self.map.get_mut((entry >> 2) as usize) {
                *slot = idx;
            }
        }
        idx
    }

    pub(crate) fn block(&self, idx: u32) -> &[CachedOp] {
        &self.blocks[idx as usize]
    }

    /// Drop every decoded block (the instruction memory changed).
    pub(crate) fn flush(&mut self) {
        if self.blocks.is_empty() {
            return;
        }
        self.map.fill(EMPTY);
        self.blocks.clear();
        self.stats.invalidations += 1;
    }
}

/// Does `inst` end a basic block (it can redirect or halt the PC)?
pub(crate) fn ends_block(inst: &Inst) -> bool {
    matches!(
        inst,
        Inst::Jal { .. }
            | Inst::Jalr { .. }
            | Inst::Branch { .. }
            | Inst::Mret
            | Inst::Ecall
            | Inst::Ebreak
            | Inst::Wfi
    )
}
