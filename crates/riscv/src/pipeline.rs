//! 4-stage pipeline timing model (IF → ID → EX → WB).
//!
//! The Codasip µRISC-V is a 4-stage in-order pipeline. We model its
//! timing per retired instruction: one cycle of base throughput plus
//! stalls from the classic small-core hazards. The constants are chosen
//! for a 4-stage organization: a taken control transfer flushes the two
//! younger stages, a load's data arrives one stage too late for an
//! immediately dependent consumer, and the iterative divider blocks EX.

use crate::inst::{Inst, MulOp};
use crate::reg::Reg;

/// Stall/penalty cycle constants of the 4-stage pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineModel {
    /// Cycles lost on a taken branch/jump (IF+ID flush).
    pub branch_penalty: u64,
    /// Cycles lost when an instruction consumes the value loaded by the
    /// immediately preceding load.
    pub load_use_penalty: u64,
    /// Extra EX cycles for a multiply (beyond the base cycle).
    pub mul_extra: u64,
    /// Extra EX cycles for a divide/remainder (iterative divider).
    pub div_extra: u64,
}

impl PipelineModel {
    /// The µRISC-V-like default.
    #[must_use]
    pub fn micro_riscv() -> Self {
        PipelineModel {
            branch_penalty: 2,
            load_use_penalty: 1,
            mul_extra: 1,
            div_extra: 16,
        }
    }
}

impl Default for PipelineModel {
    fn default() -> Self {
        Self::micro_riscv()
    }
}

/// Cycle accounting, split by cause.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Retired instructions.
    pub retired: u64,
    /// Base throughput cycles (== retired).
    pub base_cycles: u64,
    /// Cycles lost to taken control transfers.
    pub branch_stalls: u64,
    /// Cycles lost to load-use hazards.
    pub load_use_stalls: u64,
    /// Extra cycles in the multiplier/divider.
    pub muldiv_stalls: u64,
    /// Cycles waiting on instruction fetch (bus wait states).
    pub fetch_stalls: u64,
    /// Cycles waiting on data memory (bus wait states).
    pub mem_stalls: u64,
}

impl PipelineStats {
    /// Total cycles consumed.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.base_cycles
            + self.branch_stalls
            + self.load_use_stalls
            + self.muldiv_stalls
            + self.fetch_stalls
            + self.mem_stalls
    }

    /// Cycles per instruction ×1000 (fixed point, 0 when idle).
    #[must_use]
    pub fn cpi_milli(&self) -> u64 {
        (self.total_cycles() * 1000)
            .checked_div(self.retired)
            .unwrap_or(0)
    }

    /// Counter-wise difference since `earlier` (same core, later in
    /// time) — the repo-wide snapshot-delta convention
    /// (`BlockCacheStats::since`).
    #[must_use]
    pub fn since(&self, earlier: &PipelineStats) -> PipelineStats {
        PipelineStats {
            retired: self.retired - earlier.retired,
            base_cycles: self.base_cycles - earlier.base_cycles,
            branch_stalls: self.branch_stalls - earlier.branch_stalls,
            load_use_stalls: self.load_use_stalls - earlier.load_use_stalls,
            muldiv_stalls: self.muldiv_stalls - earlier.muldiv_stalls,
            fetch_stalls: self.fetch_stalls - earlier.fetch_stalls,
            mem_stalls: self.mem_stalls - earlier.mem_stalls,
        }
    }

    /// Publish these counters into a [`rvnv_obs::MetricsRegistry`]
    /// under the `cpu.*` namespace. Call with a delta
    /// ([`PipelineStats::since`]) to publish one run's share, or with
    /// cumulative stats once.
    pub fn publish(&self, metrics: &rvnv_obs::MetricsRegistry) {
        metrics.counter("cpu.retired", self.retired);
        metrics.counter("cpu.base_cycles", self.base_cycles);
        metrics.counter("cpu.branch_stalls", self.branch_stalls);
        metrics.counter("cpu.load_use_stalls", self.load_use_stalls);
        metrics.counter("cpu.muldiv_stalls", self.muldiv_stalls);
        metrics.counter("cpu.fetch_stalls", self.fetch_stalls);
        metrics.counter("cpu.mem_stalls", self.mem_stalls);
    }
}

/// The pipeline hazard tracker.
#[derive(Debug, Clone, Default)]
pub struct Pipeline {
    model: PipelineModel,
    stats: PipelineStats,
    /// Destination of the previous instruction if it was a load.
    pending_load: Option<Reg>,
}

impl Pipeline {
    /// A pipeline with the given timing model.
    #[must_use]
    pub fn new(model: PipelineModel) -> Self {
        Pipeline {
            model,
            stats: PipelineStats::default(),
            pending_load: None,
        }
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> PipelineStats {
        self.stats
    }

    /// The load-use hazard tracker state (destination of the previous
    /// instruction if it was a load) — part of the state the core's
    /// poll-loop fast-forward compares to prove a period repeats.
    pub(crate) fn pending_load(&self) -> Option<Reg> {
        self.pending_load
    }

    /// Apply `k` repetitions of a per-period stats delta at once. Used
    /// by the core's poll-loop fast-forward after proving the period
    /// repeats bit-identically; everything else about the pipeline
    /// (model, hazard state) is unchanged by construction.
    pub(crate) fn fast_forward(&mut self, delta: &PipelineStats, k: u64) {
        self.stats.retired += delta.retired * k;
        self.stats.base_cycles += delta.base_cycles * k;
        self.stats.branch_stalls += delta.branch_stalls * k;
        self.stats.load_use_stalls += delta.load_use_stalls * k;
        self.stats.muldiv_stalls += delta.muldiv_stalls * k;
        self.stats.fetch_stalls += delta.fetch_stalls * k;
        self.stats.mem_stalls += delta.mem_stalls * k;
    }

    /// The timing model in use.
    #[must_use]
    pub fn model(&self) -> PipelineModel {
        self.model
    }

    /// Account for one retired instruction and return the cycles it
    /// consumed.
    ///
    /// * `taken` — whether a control transfer redirected the PC,
    /// * `fetch_wait` — bus wait states seen by IF beyond the pipelined
    ///   single cycle,
    /// * `mem_wait` — bus wait states seen by a load/store beyond one.
    pub fn retire(&mut self, inst: &Inst, taken: bool, fetch_wait: u64, mem_wait: u64) -> u64 {
        let mut cycles = 1;
        self.stats.retired += 1;
        self.stats.base_cycles += 1;
        self.stats.fetch_stalls += fetch_wait;
        self.stats.mem_stalls += mem_wait;
        cycles += fetch_wait + mem_wait;

        // Load-use hazard against the previous instruction.
        if let Some(load_rd) = self.pending_load.take() {
            let (s1, s2) = inst.sources();
            if s1 == Some(load_rd) || s2 == Some(load_rd) {
                self.stats.load_use_stalls += self.model.load_use_penalty;
                cycles += self.model.load_use_penalty;
            }
        }

        if taken {
            self.stats.branch_stalls += self.model.branch_penalty;
            cycles += self.model.branch_penalty;
        }

        if let Inst::Mul { op, .. } = inst {
            let extra = match op {
                MulOp::Mul | MulOp::Mulh | MulOp::Mulhsu | MulOp::Mulhu => self.model.mul_extra,
                MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu => self.model.div_extra,
            };
            self.stats.muldiv_stalls += extra;
            cycles += extra;
        }

        if let Inst::Load { rd, .. } = inst {
            self.pending_load = Some(*rd);
        }

        cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{AluOp, MemWidth};
    use crate::reg::{A0, A1, T0};

    fn add(rd: Reg, rs1: Reg) -> Inst {
        Inst::AluImm {
            op: AluOp::Add,
            rd,
            rs1,
            imm: 1,
        }
    }

    #[test]
    fn straight_line_code_is_cpi_one() {
        let mut p = Pipeline::new(PipelineModel::micro_riscv());
        for _ in 0..100 {
            assert_eq!(p.retire(&add(A0, A0), false, 0, 0), 1);
        }
        assert_eq!(p.stats().cpi_milli(), 1000);
    }

    #[test]
    fn taken_branch_flushes_two_stages() {
        let mut p = Pipeline::new(PipelineModel::micro_riscv());
        let b = Inst::Branch {
            op: crate::inst::BranchOp::Eq,
            rs1: A0,
            rs2: A1,
            offset: -4,
        };
        assert_eq!(p.retire(&b, true, 0, 0), 3);
        assert_eq!(p.retire(&b, false, 0, 0), 1, "not-taken branch is free");
        assert_eq!(p.stats().branch_stalls, 2);
    }

    #[test]
    fn load_use_hazard_stalls_once() {
        let mut p = Pipeline::new(PipelineModel::micro_riscv());
        let ld = Inst::Load {
            width: MemWidth::Word,
            rd: T0,
            rs1: A0,
            offset: 0,
        };
        p.retire(&ld, false, 0, 0);
        // Consumer of t0 immediately after the load stalls.
        assert_eq!(p.retire(&add(A0, T0), false, 0, 0), 2);
        // A later consumer does not.
        p.retire(&ld, false, 0, 0);
        p.retire(&add(A1, A0), false, 0, 0);
        assert_eq!(p.retire(&add(A0, T0), false, 0, 0), 1);
        assert_eq!(p.stats().load_use_stalls, 1);
    }

    #[test]
    fn divider_blocks_longer_than_multiplier() {
        let mut p = Pipeline::new(PipelineModel::micro_riscv());
        let mul = Inst::Mul {
            op: MulOp::Mul,
            rd: A0,
            rs1: A0,
            rs2: A1,
        };
        let div = Inst::Mul {
            op: MulOp::Div,
            rd: A0,
            rs1: A0,
            rs2: A1,
        };
        let c_mul = p.retire(&mul, false, 0, 0);
        let c_div = p.retire(&div, false, 0, 0);
        assert!(c_div > c_mul);
        assert_eq!(c_div, 17);
    }

    #[test]
    fn bus_waits_accumulate() {
        let mut p = Pipeline::new(PipelineModel::micro_riscv());
        let ld = Inst::Load {
            width: MemWidth::Word,
            rd: T0,
            rs1: A0,
            offset: 0,
        };
        assert_eq!(p.retire(&ld, false, 2, 30), 33);
        let s = p.stats();
        assert_eq!(s.fetch_stalls, 2);
        assert_eq!(s.mem_stalls, 30);
        assert_eq!(s.total_cycles(), 33);
    }
}
