//! Invalidation and aliasing edges of the decoded-block cache: the
//! cases where replaying stale decodes would be architecturally wrong.
//!
//! * self-modifying program memory — any `imem_mut` backdoor write
//!   flushes the cache, so new instruction bytes are always decoded;
//! * control transfers into the *middle* of an already-cached block —
//!   blocks are keyed by entry PC and may overlap, never splice;
//! * a detached cache reattached to a fresh core over the same image —
//!   the warm-firmware path — replays without a single new decode.
//!
//! Every case runs the identical program on an uncached core and
//! requires the full outcome (stop, PC, cycle, retired, registers) to
//! match.

use rvnv_bus::sram::Sram;
use rvnv_riscv::inst::{AluOp, BranchOp, Inst};
use rvnv_riscv::reg::Reg;
use rvnv_riscv::{encode, Core};

fn image(words: &[Inst]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for inst in words {
        bytes.extend_from_slice(&encode(inst).to_le_bytes());
    }
    bytes
}

fn core(bytes: &[u8], cache: bool) -> Core<Sram, Sram> {
    let mut c = Core::new(Sram::rom(bytes.to_vec()), Sram::new(256));
    if cache {
        c.enable_block_cache(bytes.len());
    }
    c
}

/// Writable-imem variant for the self-modifying test.
fn core_rw(bytes: &[u8], cache: bool) -> Core<Sram, Sram> {
    let mut imem = Sram::new(bytes.len().next_multiple_of(4));
    rvnv_bus::Target::write_block(&mut imem, 0, bytes, 0).expect("load imem");
    let mut c = Core::new(imem, Sram::new(256));
    if cache {
        c.enable_block_cache(bytes.len().next_multiple_of(4));
    }
    c
}

fn state(c: &Core<Sram, Sram>) -> (u32, u64, u64, Vec<u32>) {
    (
        c.pc(),
        c.cycle(),
        c.retired(),
        (0..32).map(|i| c.read_reg(Reg::new(i))).collect(),
    )
}

fn addi(rd: u8, rs1: u8, imm: i32) -> Inst {
    Inst::AluImm {
        op: AluOp::Add,
        rd: Reg::new(rd),
        rs1: Reg::new(rs1),
        imm,
    }
}

/// An `imem_mut` write between runs must flush the cache: the second
/// pass executes the *new* instruction, exactly as an uncached core
/// does, and the flush is visible in the invalidation counter.
#[test]
fn self_modifying_imem_invalidates_cached_blocks() {
    // a0 += 1; a0 += 1; ebreak — then the first add becomes a0 += 100.
    let prog = image(&[addi(10, 10, 1), addi(10, 10, 1), Inst::Ebreak]);
    let patch = encode(&addi(10, 10, 100)).to_le_bytes();

    let mut cached = core_rw(&prog, true);
    let mut plain = core_rw(&prog, false);
    for c in [&mut cached, &mut plain] {
        c.run(10).expect("first pass");
        rvnv_bus::Target::write_block(c.imem_mut(), 0, &patch, 0).expect("patch");
        c.set_pc(0);
        c.run(10).expect("second pass");
    }
    assert_eq!(state(&cached), state(&plain));
    // 1 + 1 from the first pass, 100 + 1 from the patched pass.
    assert_eq!(cached.read_reg(Reg::new(10)), 103, "patched add executed");
    let stats = cached.block_cache_stats().expect("cache attached");
    assert!(
        stats.invalidations >= 1,
        "imem backdoor write must flush: {stats:?}"
    );
    assert!(
        stats.misses >= 2,
        "the patched block must be re-decoded: {stats:?}"
    );
}

/// Branching into the middle of an instruction run that is already
/// cached as a block starting earlier: entry-PC keying means the
/// mid-block target decodes its own (overlapping) block, and the
/// replayed instructions stay cycle-exact.
#[test]
fn branch_into_middle_of_cached_block_is_cycle_exact() {
    // 0x00: a0 += 1
    // 0x04: a1 += 1        <- loop target (middle of the 0x00 block)
    // 0x08: a2 += 1
    // 0x0c: bne a1, a3, -8 (back to 0x04 until a1 == a3)
    // 0x10: ebreak
    let prog = image(&[
        addi(10, 10, 1),
        addi(11, 11, 1),
        addi(12, 12, 1),
        Inst::Branch {
            op: BranchOp::Ne,
            rs1: Reg::new(11),
            rs2: Reg::new(13),
            offset: -8,
        },
        Inst::Ebreak,
    ]);
    let mut cached = core(&prog, true);
    let mut plain = core(&prog, false);
    for c in [&mut cached, &mut plain] {
        c.write_reg(Reg::new(13), 5); // five loop iterations
        c.run(100).expect("runs to ebreak");
    }
    assert_eq!(state(&cached), state(&plain));
    assert_eq!(cached.read_reg(Reg::new(11)), 5);
    let stats = cached.block_cache_stats().expect("cache attached");
    // Entry block at 0x00 plus the overlapping loop block at 0x04.
    assert!(stats.misses >= 2, "expected overlapping blocks: {stats:?}");
    assert!(stats.hits >= 3, "loop iterations must replay: {stats:?}");
}

/// A cache detached from one core and attached to a fresh one over the
/// same image (the SoC's warm-firmware path) replays with zero new
/// decodes and a bit-identical outcome.
#[test]
fn reattached_cache_replays_without_new_decodes() {
    let prog = image(&[
        addi(10, 10, 7),
        addi(10, 10, -2),
        addi(11, 10, 0),
        Inst::Ebreak,
    ]);
    let mut first = core(&prog, true);
    first.run(10).expect("cold run");
    let cold_state = state(&first);
    let cold_stats = first.block_cache_stats().expect("attached");
    let cache = first.take_block_cache().expect("detach");

    let mut second = Core::new(Sram::rom(prog.clone()), Sram::new(256));
    second.attach_block_cache(cache);
    second.run(10).expect("warm run");
    assert_eq!(state(&second), cold_state);
    let warm = second
        .block_cache_stats()
        .expect("attached")
        .since(&cold_stats);
    assert_eq!(warm.misses, 0, "warm replay must not decode: {warm:?}");
    assert_eq!(warm.invalidations, 0, "nothing invalidates a warm replay");
    assert!(warm.hits >= 1, "the warm run must hit the cache: {warm:?}");

    // The uncached oracle agrees with both.
    let mut plain = core(&prog, false);
    plain.run(10).expect("oracle");
    assert_eq!(state(&plain), cold_state);
}
