//! Fuzz-style decode/execute tests: seeded random instruction streams
//! must never panic the ISS — every failure mode is a typed
//! [`CpuError`] — and the decoded-block cache must be execution-
//! invisible on arbitrary code, not just on well-behaved firmware.
//!
//! The streams mix raw random words (mostly illegal encodings) with
//! randomly-parameterized valid instructions (loops, loads, stores,
//! CSR ops, jumps off the end of progmem…). Each stream runs twice,
//! cache off and cache on, and the full architectural state — stop
//! outcome, PC, cycle, retired count, all 32 registers — must match.
//!
//! Interesting cases found while developing the fast kernels are
//! promoted to named regression tests at the bottom so they never
//! regress silently, whatever the fuzz seeds do later.

use rvnv_bus::sram::Sram;
use rvnv_riscv::inst::{AluOp, BranchOp, CsrOp, Inst, MemWidth, MulOp};
use rvnv_riscv::reg::Reg;
use rvnv_riscv::{encode, Core, CpuError, StopReason};
use rvnv_util::SplitMix64;

/// Seeded stream generator over the shared SplitMix64 core, with the
/// domain helpers this suite wants.
struct Rng(SplitMix64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(SplitMix64::new(seed))
    }

    fn next(&mut self) -> u64 {
        self.0.next_u64()
    }

    fn below(&mut self, n: u64) -> u64 {
        self.0.below(n)
    }

    fn reg(&mut self) -> Reg {
        Reg::new((self.below(32)) as u8)
    }
}

/// A random *valid* instruction, biased toward control flow and memory
/// so streams actually loop, fault and hammer the cache.
fn random_valid(rng: &mut Rng) -> Inst {
    match rng.below(12) {
        0 => Inst::Lui {
            rd: rng.reg(),
            imm: (rng.next() as u32) & 0xFFFF_F000,
        },
        1 => Inst::AluImm {
            op: AluOp::Add,
            rd: rng.reg(),
            rs1: rng.reg(),
            imm: (rng.below(4096) as i32) - 2048,
        },
        2 => Inst::Alu {
            op: [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::And][rng.below(4) as usize],
            rd: rng.reg(),
            rs1: rng.reg(),
            rs2: rng.reg(),
        },
        3 => Inst::Mul {
            op: [MulOp::Mul, MulOp::Mulhu, MulOp::Div, MulOp::Rem][rng.below(4) as usize],
            rd: rng.reg(),
            rs1: rng.reg(),
            rs2: rng.reg(),
        },
        4 => Inst::Load {
            width: [
                MemWidth::Byte,
                MemWidth::ByteU,
                MemWidth::Half,
                MemWidth::HalfU,
                MemWidth::Word,
            ][rng.below(5) as usize],
            rd: rng.reg(),
            rs1: rng.reg(),
            offset: (rng.below(4096) as i32) - 2048,
        },
        5 => Inst::Store {
            width: [MemWidth::Byte, MemWidth::Half, MemWidth::Word][rng.below(3) as usize],
            rs1: rng.reg(),
            rs2: rng.reg(),
            offset: (rng.below(4096) as i32) - 2048,
        },
        6 => Inst::Branch {
            op: [BranchOp::Eq, BranchOp::Ne, BranchOp::Ltu, BranchOp::Geu][rng.below(4) as usize],
            rs1: rng.reg(),
            rs2: rng.reg(),
            // Short even offsets: mostly in-range, some past the end.
            offset: (((rng.below(32) as i32) - 8) * 4),
        },
        7 => Inst::Jal {
            rd: rng.reg(),
            offset: ((rng.below(64) as i32) - 16) * 4,
        },
        8 => Inst::Jalr {
            rd: rng.reg(),
            rs1: rng.reg(),
            offset: ((rng.below(32) as i32) - 8) * 4,
        },
        9 => Inst::Csr {
            op: [CsrOp::Rw, CsrOp::Rs, CsrOp::Rc][rng.below(3) as usize],
            rd: rng.reg(),
            rs1: rng.reg(),
            // Cycle/instret/custom — whatever the CSR file makes of it.
            csr: [0xC00, 0xC02, 0x340, 0x305][rng.below(4) as usize],
        },
        10 => Inst::Fence,
        _ => Inst::Ebreak,
    }
}

/// Outcome of one bounded execution, everything an equivalent run must
/// reproduce exactly. `Debug`-formatted errors keep comparison simple.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    stop: String,
    pc: u32,
    cycle: u64,
    retired: u64,
    regs: Vec<u32>,
}

const STEP_BUDGET: u64 = 512;

/// Run `words` from address 0 with a zeroed 1 KB data RAM until a stop,
/// a typed error, or the step budget. Panics (the thing the fuzz hunts)
/// propagate to the test harness.
fn run_stream(words: &[u32], cache: bool) -> Outcome {
    let mut bytes = Vec::with_capacity(words.len() * 4);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let imem_bytes = bytes.len();
    let mut core = Core::new(Sram::rom(bytes), Sram::new(1024));
    if cache {
        core.enable_block_cache(imem_bytes);
    }
    let mut steps = 0u64;
    let stop = loop {
        if steps >= STEP_BUDGET {
            break "budget".to_string();
        }
        steps += 1;
        match core.step() {
            Ok(None) => {}
            Ok(Some(reason)) => break format!("{reason:?}"),
            Err(e) => {
                assert_typed(&e);
                break format!("{e:?}");
            }
        }
    };
    Outcome {
        stop,
        pc: core.pc(),
        cycle: core.cycle(),
        retired: core.retired(),
        regs: (0..32).map(|i| core.read_reg(Reg::new(i))).collect(),
    }
}

/// The error contract: every failure is one of the typed variants (the
/// match is trivially exhaustive today; it exists so adding a variant
/// forces this fuzz harness to acknowledge it).
fn assert_typed(e: &CpuError) {
    match e {
        CpuError::FetchFault { .. } | CpuError::Illegal(_) | CpuError::DataFault { .. } => {}
    }
}

/// Raw random words: almost all illegal, some accidentally valid.
#[test]
fn random_words_never_panic_and_cache_is_invisible() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0xF00D + seed);
        let len = 4 + rng.below(60) as usize;
        let words: Vec<u32> = (0..len).map(|_| rng.next() as u32).collect();
        let plain = run_stream(&words, false);
        let cached = run_stream(&words, true);
        assert_eq!(plain, cached, "seed {seed}: cache changed execution");
    }
}

/// Valid-instruction streams: loops, memory traffic, CSR access, jumps
/// off the end — executed deep enough to exercise block reuse.
#[test]
fn valid_streams_never_panic_and_cache_is_invisible() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0xBEEF ^ (seed << 16));
        let len = 8 + rng.below(120) as usize;
        let words: Vec<u32> = (0..len).map(|_| encode(&random_valid(&mut rng))).collect();
        let plain = run_stream(&words, false);
        let cached = run_stream(&words, true);
        assert_eq!(plain, cached, "seed {seed}: cache changed execution");
    }
}

/// Half-and-half streams: valid prefixes that decode into garbage, the
/// nastiest case for a decoded-block cache (a block whose tail is
/// illegal must fault at the same op, with the same counts).
#[test]
fn mixed_streams_never_panic_and_cache_is_invisible() {
    for seed in 0..48u64 {
        let mut rng = Rng::new(0xCAFE_F00D ^ seed);
        let len = 8 + rng.below(90) as usize;
        let words: Vec<u32> = (0..len)
            .map(|_| {
                if rng.below(3) == 0 {
                    rng.next() as u32
                } else {
                    encode(&random_valid(&mut rng))
                }
            })
            .collect();
        let plain = run_stream(&words, false);
        let cached = run_stream(&words, true);
        assert_eq!(plain, cached, "seed {seed}: cache changed execution");
    }
}

// ---------------------------------------------------------------------
// Promoted regressions: fixed inputs that exercise the edges the fuzz
// streams found interesting, pinned by name.

/// The two all-bits patterns are illegal encodings, reported as typed
/// decode errors — not panics, not silent skips.
#[test]
fn regression_all_zero_and_all_one_words_are_typed_illegal() {
    for word in [0x0000_0000u32, 0xFFFF_FFFF] {
        let mut core = Core::new(Sram::rom(word.to_le_bytes().to_vec()), Sram::new(64));
        match core.step() {
            Err(CpuError::Illegal(_)) => {}
            other => panic!("{word:#010x}: expected Illegal, got {other:?}"),
        }
    }
}

/// A jump far past the end of progmem faults on *fetch* at the target,
/// after the jump itself retires.
#[test]
fn regression_jump_past_progmem_is_a_fetch_fault_at_target() {
    let words = [encode(&Inst::Jal {
        rd: Reg::new(0),
        offset: 0x10000,
    })];
    let outcome = run_stream(&words, false);
    assert!(
        outcome.stop.starts_with("FetchFault"),
        "got {}",
        outcome.stop
    );
    assert_eq!(outcome.retired, 1, "the jump itself retires");
    assert_eq!(outcome, run_stream(&words, true));
}

/// A store far outside the data RAM is a typed data fault carrying the
/// faulting PC and address.
#[test]
fn regression_store_outside_dmem_is_a_typed_data_fault() {
    let words = [
        encode(&Inst::Lui {
            rd: Reg::new(5),
            imm: 0x7FFF_F000,
        }),
        encode(&Inst::Store {
            width: MemWidth::Word,
            rs1: Reg::new(5),
            rs2: Reg::new(0),
            offset: 0,
        }),
    ];
    let mut bytes = Vec::new();
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let mut core = Core::new(Sram::rom(bytes), Sram::new(1024));
    assert!(core.step().unwrap().is_none());
    match core.step() {
        Err(CpuError::DataFault { pc, addr, .. }) => {
            assert_eq!(pc, 4);
            assert_eq!(addr, 0x7FFF_F000);
        }
        other => panic!("expected DataFault, got {other:?}"),
    }
    assert_eq!(run_stream(&words, false), run_stream(&words, true));
}

/// A tight two-instruction loop runs to the step budget identically
/// with and without the cache — the maximal-reuse case (every
/// iteration after the first replays a cached block).
#[test]
fn regression_tight_loop_replays_identically() {
    let words = [
        encode(&Inst::AluImm {
            op: AluOp::Add,
            rd: Reg::new(10),
            rs1: Reg::new(10),
            imm: 1,
        }),
        encode(&Inst::Jal {
            rd: Reg::new(0),
            offset: -4,
        }),
    ];
    let plain = run_stream(&words, false);
    let cached = run_stream(&words, true);
    assert_eq!(plain, cached);
    assert_eq!(plain.stop, "budget");
    assert_eq!(plain.regs[10], (STEP_BUDGET / 2) as u32);
}

/// `ebreak` stops with a typed reason, not an error, and the stop PC
/// matches on both paths.
#[test]
fn regression_ebreak_is_a_stop_not_an_error() {
    let words = [encode(&Inst::Ebreak)];
    let outcome = run_stream(&words, false);
    assert_eq!(outcome.stop, format!("{:?}", StopReason::Ebreak));
    assert_eq!(outcome, run_stream(&words, true));
}
