//! Property-based tests on the NVDLA engine kernels.

use proptest::prelude::*;

use rvnv_nvdla::config::Precision;
use rvnv_nvdla::descriptor::{ConvDesc, PdpDesc, PoolKind, SdpDesc, SdpSrc};
use rvnv_nvdla::engines::{conv, pdp, sdp};
use rvnv_nvdla::regs;

fn conv_desc(in_c: u32, hw: u32, out_c: u32, k: u32) -> ConvDesc {
    ConvDesc {
        src: 0,
        in_w: hw,
        in_h: hw,
        in_c,
        wt_addr: 0,
        wt_bytes: out_c * in_c * k * k,
        stride: 1,
        pad: 0,
        out_w: hw - k + 1,
        out_h: hw - k + 1,
        out_c,
        kw: k,
        kh: k,
        groups: 1,
        in_scale: 1.0,
        wt_scale: 1.0,
        precision: Precision::Int8,
    }
}

proptest! {
    /// Zero weights always give a zero accumulator.
    #[test]
    fn conv_zero_weights_zero_output(
        feature in proptest::collection::vec(any::<u8>(), 2 * 6 * 6..=2 * 6 * 6)
    ) {
        let d = conv_desc(2, 6, 3, 3);
        let weights = vec![0u8; (d.wt_bytes) as usize];
        let out = conv::compute(&d, &feature, &weights);
        prop_assert!(out.iter().all(|&v| v == 0.0));
    }

    /// INT8 accumulators are bounded by taps × 127².
    #[test]
    fn conv_accumulator_bounded(
        feature in proptest::collection::vec(any::<u8>(), 2 * 6 * 6..=2 * 6 * 6),
        weights in proptest::collection::vec(any::<u8>(), 3 * 2 * 9..=3 * 2 * 9),
    ) {
        let d = conv_desc(2, 6, 3, 3);
        let out = conv::compute(&d, &feature, &weights);
        let bound = (2 * 9) as f32 * 128.0 * 128.0;
        prop_assert!(out.iter().all(|v| v.abs() <= bound));
    }

    /// Convolution is linear in the input: int8 features doubled (within
    /// range) double the accumulator.
    #[test]
    fn conv_is_linear_in_input(
        small in proptest::collection::vec(-40i8..=40, 5 * 5..=5 * 5),
        weights in proptest::collection::vec(any::<u8>(), 2 * 9..=2 * 9),
    ) {
        let d = conv_desc(1, 5, 2, 3);
        let f1: Vec<u8> = small.iter().map(|&v| v as u8).collect();
        let f2: Vec<u8> = small.iter().map(|&v| (v * 2) as u8).collect();
        let a = conv::compute(&d, &f1, &weights);
        let b = conv::compute(&d, &f2, &weights);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((y - 2.0 * x).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// Max pooling output values always come from the input set and
    /// dominate average pooling.
    #[test]
    fn max_pool_dominates_avg_pool(
        src in proptest::collection::vec(any::<u8>(), 16..=16)
    ) {
        let mk = |kind| PdpDesc {
            src: 0,
            dst: 0,
            in_w: 4,
            in_h: 4,
            c: 1,
            kind,
            k: 2,
            stride: 2,
            pad: 0,
            out_w: 2,
            out_h: 2,
            precision: Precision::Int8,
        };
        let max_out = pdp::compute(&mk(PoolKind::Max), &src);
        let avg_out = pdp::compute(&mk(PoolKind::Avg), &src);
        let inputs: std::collections::BTreeSet<i8> =
            src.iter().map(|&b| b as i8).collect();
        for (m, a) in max_out.iter().zip(&avg_out) {
            prop_assert!(inputs.contains(&(*m as i8)), "max from input set");
            prop_assert!((*m as i8) >= (*a as i8) - 1, "max >= avg (rounding slack)");
        }
    }

    /// ReLU output is non-negative and idempotent.
    #[test]
    fn sdp_relu_non_negative_and_idempotent(
        vals in proptest::collection::vec(-100.0f32..100.0, 1..64)
    ) {
        let d = SdpDesc {
            src_mode: SdpSrc::Flying,
            src: 0,
            src2: 0,
            dst: 0,
            w: vals.len() as u32,
            h: 1,
            c: 1,
            bs_addr: 0,
            flags: regs::SDP_FLAG_RELU,
            out_scale: 1.0,
            in_scale: 1.0,
            in2_scale: 1.0,
            precision: Precision::Fp16,
        };
        let once = sdp::apply(&d, vals.clone(), None, None);
        let once_vals = rvnv_nvdla::engines::to_real(&once, Precision::Fp16, 1.0);
        prop_assert!(once_vals.iter().all(|&v| v >= 0.0));
        let twice = sdp::apply(&d, once_vals.clone(), None, None);
        prop_assert_eq!(once, twice, "relu is idempotent");
    }

    /// Eltwise addition commutes.
    #[test]
    fn sdp_eltwise_commutes(
        a in proptest::collection::vec(-10.0f32..10.0, 8..=8),
        b in proptest::collection::vec(-10.0f32..10.0, 8..=8),
    ) {
        let d = SdpDesc {
            src_mode: SdpSrc::Memory,
            src: 0,
            src2: 0,
            dst: 0,
            w: 8,
            h: 1,
            c: 1,
            bs_addr: 0,
            flags: regs::SDP_FLAG_ELTWISE,
            out_scale: 1.0,
            in_scale: 1.0,
            in2_scale: 1.0,
            precision: Precision::Fp16,
        };
        let ab = sdp::apply(&d, a.clone(), Some(b.clone()), None);
        let ba = sdp::apply(&d, b, Some(a), None);
        prop_assert_eq!(ab, ba);
    }
}
