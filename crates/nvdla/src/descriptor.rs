//! Hardware operation descriptors decoded from CSB registers.
//!
//! When firmware writes `OP_ENABLE`, the engine latches its `D_*`
//! registers into one of these descriptors — the software-visible
//! contract between the compiler-generated traces and the hardware
//! model.

use crate::config::Precision;
use crate::regs::{self, Block};

/// Register-read function for a block (`offset -> value`).
pub(crate) type RegRead<'a> = &'a dyn Fn(Block, u32) -> u32;

fn f32_of(bits: u32) -> f32 {
    f32::from_bits(bits)
}

fn precision_of(bits: u32) -> Precision {
    if bits & 1 == 1 {
        Precision::Fp16
    } else {
        Precision::Int8
    }
}

fn unpack_wh(v: u32) -> (u32, u32) {
    (v & 0xFFFF, v >> 16)
}

/// A convolution launched through CDMA/CSC/CMAC/CACC.
#[derive(Debug, Clone, PartialEq)]
pub struct ConvDesc {
    /// Input feature DRAM address.
    pub src: u32,
    /// Input width.
    pub in_w: u32,
    /// Input height.
    pub in_h: u32,
    /// Input channels (total).
    pub in_c: u32,
    /// Weight DRAM address.
    pub wt_addr: u32,
    /// Weight bytes.
    pub wt_bytes: u32,
    /// Stride.
    pub stride: u32,
    /// Zero padding.
    pub pad: u32,
    /// Output width.
    pub out_w: u32,
    /// Output height.
    pub out_h: u32,
    /// Output channels (total).
    pub out_c: u32,
    /// Kernel width.
    pub kw: u32,
    /// Kernel height.
    pub kh: u32,
    /// Group count.
    pub groups: u32,
    /// Input activation scale (INT8).
    pub in_scale: f32,
    /// Weight scale (INT8).
    pub wt_scale: f32,
    /// Operating precision.
    pub precision: Precision,
}

impl ConvDesc {
    pub(crate) fn decode(r: RegRead<'_>) -> Self {
        let (in_w, in_h) = unpack_wh(r(Block::Cdma, regs::CDMA_DATAIN_SIZE0));
        let (out_w, out_h) = unpack_wh(r(Block::Csc, regs::CSC_DATAOUT_SIZE0));
        let (kw, kh) = unpack_wh(r(Block::Csc, regs::CSC_WEIGHT_SIZE0));
        ConvDesc {
            src: r(Block::Cdma, regs::CDMA_DATAIN_ADDR),
            in_w,
            in_h,
            in_c: r(Block::Cdma, regs::CDMA_DATAIN_SIZE1),
            wt_addr: r(Block::Cdma, regs::CDMA_WEIGHT_ADDR),
            wt_bytes: r(Block::Cdma, regs::CDMA_WEIGHT_BYTES),
            stride: r(Block::Cdma, regs::CDMA_CONV_STRIDE).max(1),
            pad: r(Block::Cdma, regs::CDMA_ZERO_PADDING),
            out_w,
            out_h,
            out_c: r(Block::Csc, regs::CSC_DATAOUT_SIZE1),
            kw,
            kh,
            groups: r(Block::Csc, regs::CSC_GROUPS).max(1),
            in_scale: f32_of(r(Block::Cdma, regs::CDMA_IN_SCALE)),
            wt_scale: f32_of(r(Block::Cdma, regs::CDMA_WT_SCALE)),
            precision: precision_of(r(Block::Cmac, regs::CMAC_MISC)),
        }
    }

    /// Output elements.
    #[must_use]
    pub fn out_elems(&self) -> usize {
        (self.out_c * self.out_h * self.out_w) as usize
    }

    /// Input feature bytes at this precision.
    #[must_use]
    pub fn feature_bytes(&self) -> usize {
        (self.in_c * self.in_h * self.in_w * self.precision.bytes()) as usize
    }

    /// Multiply-accumulates for the whole operation.
    #[must_use]
    pub fn macs(&self) -> u64 {
        let in_per_group = u64::from(self.in_c / self.groups);
        u64::from(self.out_c)
            * u64::from(self.out_h)
            * u64::from(self.out_w)
            * in_per_group
            * u64::from(self.kh)
            * u64::from(self.kw)
    }
}

/// SDP source selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SdpSrc {
    /// On-the-fly from the convolution accumulator.
    Flying,
    /// From memory.
    Memory,
}

/// A single-point (bias/BN/ReLU/eltwise) operation.
#[derive(Debug, Clone, PartialEq)]
pub struct SdpDesc {
    /// Data source.
    pub src_mode: SdpSrc,
    /// Source address (memory mode).
    pub src: u32,
    /// Second source (eltwise).
    pub src2: u32,
    /// Destination address.
    pub dst: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
    /// Channels.
    pub c: u32,
    /// Bias/scale table address (8 bytes per channel).
    pub bs_addr: u32,
    /// Flag bits ([`regs::SDP_FLAG_RELU`] …).
    pub flags: u32,
    /// Output scale (INT8).
    pub out_scale: f32,
    /// Input scale (INT8 memory mode).
    pub in_scale: f32,
    /// Second-input scale (INT8 eltwise).
    pub in2_scale: f32,
    /// Operating precision.
    pub precision: Precision,
}

impl SdpDesc {
    pub(crate) fn decode(r: RegRead<'_>) -> Self {
        let (w, h) = unpack_wh(r(Block::Sdp, regs::SDP_SIZE0));
        SdpDesc {
            src_mode: if r(Block::Sdp, regs::SDP_SRC) & 1 == 0 {
                SdpSrc::Flying
            } else {
                SdpSrc::Memory
            },
            src: r(Block::Sdp, regs::SDP_SRC_ADDR),
            src2: r(Block::Sdp, regs::SDP_SRC2_ADDR),
            dst: r(Block::Sdp, regs::SDP_DST_ADDR),
            w,
            h,
            c: r(Block::Sdp, regs::SDP_SIZE1),
            bs_addr: r(Block::Sdp, regs::SDP_BS_ADDR),
            flags: r(Block::Sdp, regs::SDP_FLAGS),
            out_scale: f32_of(r(Block::Sdp, regs::SDP_OUT_SCALE)),
            in_scale: f32_of(r(Block::Sdp, regs::SDP_IN_SCALE)),
            in2_scale: f32_of(r(Block::Sdp, regs::SDP_IN2_SCALE)),
            precision: precision_of(r(Block::Sdp, regs::SDP_PRECISION)),
        }
    }

    /// Surface elements.
    #[must_use]
    pub fn elems(&self) -> usize {
        (self.c * self.h * self.w) as usize
    }

    /// Whether flag `bit` is set.
    #[must_use]
    pub fn has(&self, bit: u32) -> bool {
        self.flags & bit != 0
    }
}

/// Pooling kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum.
    Max,
    /// Average (Caffe semantics: divide by k², padding included).
    Avg,
}

/// A planar (pooling) operation.
#[derive(Debug, Clone, PartialEq)]
pub struct PdpDesc {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Input width.
    pub in_w: u32,
    /// Input height.
    pub in_h: u32,
    /// Channels.
    pub c: u32,
    /// Pooling kind.
    pub kind: PoolKind,
    /// Kernel size.
    pub k: u32,
    /// Stride.
    pub stride: u32,
    /// Padding.
    pub pad: u32,
    /// Output width.
    pub out_w: u32,
    /// Output height.
    pub out_h: u32,
    /// Operating precision.
    pub precision: Precision,
}

impl PdpDesc {
    pub(crate) fn decode(r: RegRead<'_>) -> Self {
        let (in_w, in_h) = unpack_wh(r(Block::Pdp, regs::PDP_SIZE_IN));
        let (out_w, out_h) = unpack_wh(r(Block::Pdp, regs::PDP_SIZE_OUT));
        let pooling = r(Block::Pdp, regs::PDP_POOLING);
        PdpDesc {
            src: r(Block::Pdp, regs::PDP_SRC_ADDR),
            dst: r(Block::Pdp, regs::PDP_DST_ADDR),
            in_w,
            in_h,
            c: r(Block::Pdp, regs::PDP_CHANNELS),
            kind: if pooling & 1 == 0 {
                PoolKind::Max
            } else {
                PoolKind::Avg
            },
            k: (pooling >> 8) & 0xFF,
            stride: ((pooling >> 16) & 0xFF).max(1),
            pad: (pooling >> 24) & 0xFF,
            out_w,
            out_h,
            precision: precision_of(r(Block::Pdp, regs::PDP_PRECISION)),
        }
    }

    /// Output elements.
    #[must_use]
    pub fn out_elems(&self) -> usize {
        (self.c * self.out_h * self.out_w) as usize
    }
}

/// A channel (LRN) operation.
#[derive(Debug, Clone, PartialEq)]
pub struct CdpDesc {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Width.
    pub w: u32,
    /// Height.
    pub h: u32,
    /// Channels.
    pub c: u32,
    /// LRN window (odd).
    pub local_size: u32,
    /// Alpha.
    pub alpha: f32,
    /// Beta.
    pub beta: f32,
    /// K.
    pub k: f32,
    /// Operating precision.
    pub precision: Precision,
    /// Input scale (INT8).
    pub in_scale: f32,
    /// Output scale (INT8).
    pub out_scale: f32,
}

impl CdpDesc {
    pub(crate) fn decode(r: RegRead<'_>) -> Self {
        let (w, h) = unpack_wh(r(Block::Cdp, regs::CDP_SIZE));
        CdpDesc {
            src: r(Block::Cdp, regs::CDP_SRC_ADDR),
            dst: r(Block::Cdp, regs::CDP_DST_ADDR),
            w,
            h,
            c: r(Block::Cdp, regs::CDP_CHANNELS),
            local_size: r(Block::Cdp, regs::CDP_LRN_SIZE).max(1),
            alpha: f32_of(r(Block::Cdp, regs::CDP_ALPHA)),
            beta: f32_of(r(Block::Cdp, regs::CDP_BETA)),
            k: f32_of(r(Block::Cdp, regs::CDP_K)),
            precision: precision_of(r(Block::Cdp, regs::CDP_PRECISION)),
            in_scale: f32_of(r(Block::Cdp, regs::CDP_IN_SCALE)),
            out_scale: f32_of(r(Block::Cdp, regs::CDP_OUT_SCALE)),
        }
    }

    /// Surface elements.
    #[must_use]
    pub fn elems(&self) -> usize {
        (self.c * self.h * self.w) as usize
    }
}

/// A RUBIK/BDMA contiguous copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CopyDesc {
    /// Source address.
    pub src: u32,
    /// Destination address.
    pub dst: u32,
    /// Bytes to move.
    pub len: u32,
}

impl CopyDesc {
    pub(crate) fn decode(block: Block, r: RegRead<'_>) -> Self {
        CopyDesc {
            src: r(block, regs::COPY_SRC_ADDR),
            dst: r(block, regs::COPY_DST_ADDR),
            len: r(block, regs::COPY_LEN),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_desc_decodes_packed_fields() {
        let read = |b: Block, off: u32| -> u32 {
            match (b, off) {
                (Block::Cdma, regs::CDMA_DATAIN_SIZE0) => 28 | (14 << 16),
                (Block::Cdma, regs::CDMA_DATAIN_SIZE1) => 3,
                (Block::Csc, regs::CSC_DATAOUT_SIZE0) => 13 | (6 << 16),
                (Block::Csc, regs::CSC_DATAOUT_SIZE1) => 20,
                (Block::Csc, regs::CSC_WEIGHT_SIZE0) => 5 | (5 << 16),
                (Block::Csc, regs::CSC_GROUPS) => 0, // clamps to 1
                (Block::Cmac, regs::CMAC_MISC) => 1, // fp16
                (Block::Cdma, regs::CDMA_IN_SCALE) => 1.5f32.to_bits(),
                _ => 0,
            }
        };
        let d = ConvDesc::decode(&read);
        assert_eq!((d.in_w, d.in_h, d.in_c), (28, 14, 3));
        assert_eq!((d.out_w, d.out_h, d.out_c), (13, 6, 20));
        assert_eq!((d.kw, d.kh), (5, 5));
        assert_eq!(d.groups, 1);
        assert_eq!(d.stride, 1, "stride 0 clamps to 1");
        assert_eq!(d.precision, Precision::Fp16);
        assert_eq!(d.in_scale, 1.5);
        assert_eq!(d.macs(), 20 * 6 * 13 * 3 * 25);
    }

    #[test]
    fn pdp_pooling_word_unpacks() {
        let read = |_: Block, off: u32| -> u32 {
            match off {
                regs::PDP_POOLING => 1 | (3 << 8) | (2 << 16) | (1 << 24),
                regs::PDP_SIZE_IN => 8 | (8 << 16),
                regs::PDP_SIZE_OUT => 4 | (4 << 16),
                regs::PDP_CHANNELS => 16,
                _ => 0,
            }
        };
        let d = PdpDesc::decode(&read);
        assert_eq!(d.kind, PoolKind::Avg);
        assert_eq!((d.k, d.stride, d.pad), (3, 2, 1));
        assert_eq!(d.out_elems(), 16 * 16);
    }

    #[test]
    fn sdp_flags() {
        let read = |_: Block, off: u32| -> u32 {
            match off {
                regs::SDP_FLAGS => regs::SDP_FLAG_RELU | regs::SDP_FLAG_BIAS,
                regs::SDP_SRC => 1,
                _ => 0,
            }
        };
        let d = SdpDesc::decode(&read);
        assert!(d.has(regs::SDP_FLAG_RELU));
        assert!(d.has(regs::SDP_FLAG_BIAS));
        assert!(!d.has(regs::SDP_FLAG_ELTWISE));
        assert_eq!(d.src_mode, SdpSrc::Memory);
    }
}
