//! Convolution pipeline (CDMA → CBUF → CSC → CMAC → CACC) functional
//! model.
//!
//! Computes the accumulator surface for one convolution descriptor.
//! INT8 accumulates exactly in `i32` (as the RTL's 34-bit accumulators
//! do) and converts to real values with the input×weight scale; FP16
//! accumulates in f32 (the RTL uses wider-than-fp16 accumulation too).
//!
//! Two implementations share the same tap order:
//!
//! * [`compute`] — the production path: an `im2col`-style *blocked*
//!   loop that gathers each output window's input patch into a flat
//!   buffer once per `(oy, ox)` position and reuses it across every
//!   output channel, with a bounds-check-free inner dot product.
//! * [`compute_reference`] — the original naive tap-at-a-time loop,
//!   kept as the bit-exactness oracle for tests, the determinism
//!   fingerprint and the perf harness.
//!
//! Bit-identical outputs are guaranteed because both paths visit the
//! taps of each output in the same `(ic, ky, kx)` order (f32 addition
//! is not associative, so the *sequence* of adds is part of the
//! contract), and padding taps are skipped rather than added as zeros
//! (adding `0.0` could flip a `-0.0` partial sum to `+0.0`). The one
//! exception is NaN *inputs*, whose payload propagation IEEE 754 (and
//! the compiler) leaves underdetermined — encoded model data never
//! contains them.

use crate::config::Precision;
use crate::descriptor::ConvDesc;
use rvnv_nn::F16;

/// Compute the convolution accumulator as real (f32) values in NCHW
/// output order.
///
/// `feature` and `weights` are the packed DRAM buffers (NCHW / OIHW at
/// the descriptor's precision).
///
/// # Panics
///
/// Panics if the buffers are smaller than the descriptor implies.
#[must_use]
pub fn compute(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    let d = Dims::of(desc);
    match desc.precision {
        Precision::Int8 => {
            assert!(feature.len() >= d.in_elems, "feature buffer too small");
            assert!(weights.len() >= d.wt_elems, "weight buffer too small");
            let f: Vec<i32> = feature[..d.in_elems]
                .iter()
                .map(|&b| i32::from(b as i8))
                .collect();
            let w: Vec<i32> = weights[..d.wt_elems]
                .iter()
                .map(|&b| i32::from(b as i8))
                .collect();
            let acc_scale = desc.in_scale * desc.wt_scale;
            compute_blocked(&d, &f, &w, |acc: i32| acc as f32 * acc_scale)
        }
        Precision::Fp16 => {
            assert!(feature.len() >= d.in_elems * 2, "feature buffer too small");
            assert!(weights.len() >= d.wt_elems * 2, "weight buffer too small");
            let f: Vec<f32> = decode_f16(&feature[..d.in_elems * 2]);
            let w: Vec<f32> = decode_f16(&weights[..d.wt_elems * 2]);
            compute_blocked(&d, &f, &w, |acc: f32| acc)
        }
    }
}

/// The original tap-at-a-time implementation — slow, obviously
/// correct, and the oracle [`compute`] is differentially tested
/// against (bit-identical output required).
#[must_use]
pub fn compute_reference(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    match desc.precision {
        Precision::Int8 => reference_int8(desc, feature, weights),
        Precision::Fp16 => reference_fp16(desc, feature, weights),
    }
}

fn decode_f16(bytes: &[u8]) -> Vec<f32> {
    bytes
        .chunks_exact(2)
        .map(|p| F16::from_bits(u16::from_le_bytes([p[0], p[1]])).to_f32())
        .collect()
}

/// Multiply-accumulate element: `i32` for INT8 (exact), `f32` for FP16.
trait Mac: Copy + Default {
    fn mac(acc: Self, f: Self, w: Self) -> Self;

    /// Full-window dot product over equal-length slices. The default
    /// is a strict left-to-right fold; element types whose addition is
    /// associative may override with a vectorizable loop.
    fn dot(a: &[Self], b: &[Self]) -> Self {
        a.iter()
            .zip(b)
            .fold(Self::default(), |acc, (&f, &w)| Self::mac(acc, f, w))
    }
}

impl Mac for i32 {
    fn mac(acc: Self, f: Self, w: Self) -> Self {
        acc + f * w
    }

    /// Integer addition is associative, so the compiler is free to
    /// vectorize this reduction — the result is exact regardless of
    /// order (int8 products cannot overflow a realistic i32 sum).
    fn dot(a: &[Self], b: &[Self]) -> Self {
        let n = a.len().min(b.len());
        let (a, b) = (&a[..n], &b[..n]);
        let mut acc = 0;
        for i in 0..n {
            acc += a[i] * b[i];
        }
        acc
    }
}

impl Mac for f32 {
    /// f32 keeps the strict sequential default: the summation order is
    /// the bit-exactness contract.
    fn mac(acc: Self, f: Self, w: Self) -> Self {
        acc + f * w
    }
}

/// Blocked convolution over pre-converted element buffers.
///
/// For each `(group, oy, ox)`, the valid kernel window is computed
/// once, the input patch is gathered row-contiguously into `patch` in
/// `(ic, ky, kx)` tap order, and every output channel of the group
/// reduces that same patch against its (contiguous, OIHW) weight row.
/// Interior outputs — the vast majority — see a full window, where the
/// patch layout coincides with the weight row layout and the reduction
/// is a straight `zip` dot product; border outputs index the weight
/// row through a per-window offset table instead.
fn compute_blocked<T: Mac>(
    d: &Dims,
    feature: &[T],
    weights: &[T],
    finish: impl Fn(T) -> f32,
) -> Vec<f32> {
    let mut out = vec![0.0f32; d.out_c * d.out_h * d.out_w];
    let plane = d.in_h * d.in_w;
    let wt_per_oc = d.in_per_group * d.kh * d.kw;
    let groups = d.out_c / d.out_per_group;
    let mut patch: Vec<T> = Vec::with_capacity(wt_per_oc);
    // Weight-row offsets (`ic*kh*kw + ky*kw + kx`) of the gathered
    // taps, rebuilt only for clipped (border) windows.
    let mut widx: Vec<usize> = Vec::with_capacity(wt_per_oc);
    for g in 0..groups {
        let in_base = g * d.in_per_group * plane;
        for oy in 0..d.out_h {
            let base_y = (oy * d.stride) as isize - d.pad;
            let ky0 = usize::try_from(-base_y).unwrap_or(0).min(d.kh);
            let ky1 = usize::try_from(d.in_h as isize - base_y)
                .unwrap_or(0)
                .min(d.kh);
            for ox in 0..d.out_w {
                let base_x = (ox * d.stride) as isize - d.pad;
                let kx0 = usize::try_from(-base_x).unwrap_or(0).min(d.kw);
                let kx1 = usize::try_from(d.in_w as isize - base_x)
                    .unwrap_or(0)
                    .min(d.kw);
                let row_len = kx1.saturating_sub(kx0);
                let full = ky0 == 0 && ky1 == d.kh && kx0 == 0 && kx1 == d.kw;
                // A kernel spanning the whole input plane (fully-
                // connected layers lowered to conv) needs no gather at
                // all: the patch *is* the group's feature slice.
                let whole_plane = full && d.kw == d.in_w && d.kh == d.in_h;

                patch.clear();
                if row_len > 0 && !whole_plane {
                    let ix0 = (base_x + kx0 as isize) as usize;
                    if full && d.kw == d.in_w {
                        // Full-width kernel rows are contiguous across
                        // ky — one copy per input channel.
                        for ic in 0..d.in_per_group {
                            let start = in_base + ic * plane + base_y as usize * d.in_w;
                            patch.extend_from_slice(&feature[start..start + d.kh * d.in_w]);
                        }
                    } else {
                        for ic in 0..d.in_per_group {
                            let fplane = &feature[in_base + ic * plane..][..plane];
                            for ky in ky0..ky1 {
                                let iy = (base_y + ky as isize) as usize;
                                let start = iy * d.in_w + ix0;
                                patch.extend_from_slice(&fplane[start..start + row_len]);
                            }
                        }
                    }
                }
                let patch_taps: &[T] = if whole_plane {
                    &feature[in_base..in_base + d.in_per_group * plane]
                } else {
                    &patch
                };
                if !full {
                    widx.clear();
                    for ic in 0..d.in_per_group {
                        for ky in ky0..ky1 {
                            for kx in kx0..kx1 {
                                widx.push((ic * d.kh + ky) * d.kw + kx);
                            }
                        }
                    }
                }

                for oc_in_g in 0..d.out_per_group {
                    let oc = g * d.out_per_group + oc_in_g;
                    let wrow = &weights[oc * wt_per_oc..][..wt_per_oc];
                    let acc = if full {
                        // Full window: gathered tap order equals the
                        // OIHW weight-row order — contiguous dot.
                        T::dot(patch_taps, wrow)
                    } else {
                        patch_taps
                            .iter()
                            .zip(&widx)
                            .fold(T::default(), |acc, (&f, &wi)| T::mac(acc, f, wrow[wi]))
                    };
                    out[(oc * d.out_h + oy) * d.out_w + ox] = finish(acc);
                }
            }
        }
    }
    out
}

fn reference_int8(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    let d = Dims::of(desc);
    assert!(feature.len() >= d.in_elems, "feature buffer too small");
    assert!(weights.len() >= d.wt_elems, "weight buffer too small");
    let acc_scale = desc.in_scale * desc.wt_scale;
    let mut out = vec![0.0f32; desc.out_elems()];
    d.for_each_output(|oc, oy, ox, out_idx| {
        let mut acc: i32 = 0;
        d.for_each_tap(oc, oy, ox, |f_idx, w_idx| {
            acc += i32::from(feature[f_idx] as i8) * i32::from(weights[w_idx] as i8);
        });
        out[out_idx] = acc as f32 * acc_scale;
    });
    out
}

fn reference_fp16(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    let d = Dims::of(desc);
    assert!(feature.len() >= d.in_elems * 2, "feature buffer too small");
    assert!(weights.len() >= d.wt_elems * 2, "weight buffer too small");
    let f16_at = |buf: &[u8], i: usize| -> f32 {
        F16::from_bits(u16::from_le_bytes([buf[2 * i], buf[2 * i + 1]])).to_f32()
    };
    let mut out = vec![0.0f32; desc.out_elems()];
    d.for_each_output(|oc, oy, ox, out_idx| {
        let mut acc: f32 = 0.0;
        d.for_each_tap(oc, oy, ox, |f_idx, w_idx| {
            acc += f16_at(feature, f_idx) * f16_at(weights, w_idx);
        });
        out[out_idx] = acc;
    });
    out
}

/// Loop bounds shared by both precisions (indices are element indices).
struct Dims {
    in_w: usize,
    in_h: usize,
    in_per_group: usize,
    out_w: usize,
    out_h: usize,
    out_c: usize,
    out_per_group: usize,
    kw: usize,
    kh: usize,
    stride: usize,
    pad: isize,
    in_elems: usize,
    wt_elems: usize,
}

impl Dims {
    fn of(desc: &ConvDesc) -> Self {
        let groups = desc.groups as usize;
        let in_per_group = desc.in_c as usize / groups;
        let out_per_group = desc.out_c as usize / groups;
        Dims {
            in_w: desc.in_w as usize,
            in_h: desc.in_h as usize,
            in_per_group,
            out_w: desc.out_w as usize,
            out_h: desc.out_h as usize,
            out_c: desc.out_c as usize,
            out_per_group,
            kw: desc.kw as usize,
            kh: desc.kh as usize,
            stride: desc.stride as usize,
            pad: desc.pad as isize,
            in_elems: (desc.in_c * desc.in_h * desc.in_w) as usize,
            wt_elems: (desc.out_c * (desc.in_c / desc.groups) * desc.kh * desc.kw) as usize,
        }
    }

    fn for_each_output(&self, mut f: impl FnMut(usize, usize, usize, usize)) {
        let mut idx = 0;
        for oc in 0..self.out_c {
            for oy in 0..self.out_h {
                for ox in 0..self.out_w {
                    f(oc, oy, ox, idx);
                    idx += 1;
                }
            }
        }
    }

    /// Visit every (feature, weight) element-index pair for one output.
    fn for_each_tap(&self, oc: usize, oy: usize, ox: usize, mut f: impl FnMut(usize, usize)) {
        let g = oc / self.out_per_group;
        let in_base_c = g * self.in_per_group;
        for ic in 0..self.in_per_group {
            let f_plane = (in_base_c + ic) * self.in_h * self.in_w;
            let w_plane = ((oc * self.in_per_group) + ic) * self.kh * self.kw;
            for ky in 0..self.kh {
                let iy = (oy * self.stride + ky) as isize - self.pad;
                if iy < 0 || iy as usize >= self.in_h {
                    continue;
                }
                for kx in 0..self.kw {
                    let ix = (ox * self.stride + kx) as isize - self.pad;
                    if ix < 0 || ix as usize >= self.in_w {
                        continue;
                    }
                    f(
                        f_plane + iy as usize * self.in_w + ix as usize,
                        w_plane + ky * self.kw + kx,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;

    #[allow(clippy::too_many_arguments)]
    fn desc(
        in_c: u32,
        in_hw: u32,
        out_c: u32,
        k: u32,
        stride: u32,
        pad: u32,
        groups: u32,
        precision: Precision,
    ) -> ConvDesc {
        let out_hw = (in_hw + 2 * pad - k) / stride + 1;
        ConvDesc {
            src: 0,
            in_w: in_hw,
            in_h: in_hw,
            in_c,
            wt_addr: 0,
            wt_bytes: out_c * (in_c / groups) * k * k * precision.bytes(),
            stride,
            pad,
            out_w: out_hw,
            out_h: out_hw,
            out_c,
            kw: k,
            kh: k,
            groups,
            in_scale: 1.0,
            wt_scale: 1.0,
            precision,
        }
    }

    #[test]
    fn int8_sum_window() {
        // 3x3 input 1..9, 2x2 kernel of ones.
        let d = desc(1, 3, 1, 2, 1, 0, 1, Precision::Int8);
        let feature: Vec<u8> = (1..=9i8).map(|v| v as u8).collect();
        let weights = vec![1u8; 4];
        let out = compute(&d, &feature, &weights);
        assert_eq!(out, vec![12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn int8_scales_applied() {
        let mut d = desc(1, 1, 1, 1, 1, 0, 1, Precision::Int8);
        d.in_scale = 0.5;
        d.wt_scale = 0.25;
        let out = compute(&d, &[4i8 as u8], &[8i8 as u8]);
        // 4*8 = 32 raw; × 0.5×0.25 = 4.0 real.
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn padding_zeros_contribute_nothing() {
        let d = desc(1, 1, 1, 3, 1, 1, 1, Precision::Int8);
        let out = compute(&d, &[5i8 as u8], &[1u8; 9]);
        // Only the center tap sees data.
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn grouped_convolution_separates_channels() {
        // 2 channels, 2 groups, 1x1 kernels [2] and [3].
        let d = desc(2, 2, 2, 1, 1, 0, 2, Precision::Int8);
        let feature = [1u8, 1, 1, 1, 1, 1, 1, 1];
        let weights = [2u8, 3];
        let out = compute(&d, &feature, &weights);
        assert_eq!(&out[..4], &[2.0; 4]);
        assert_eq!(&out[4..], &[3.0; 4]);
    }

    #[test]
    fn negative_int8_values() {
        let d = desc(1, 1, 1, 1, 1, 0, 1, Precision::Int8);
        let out = compute(&d, &[(-5i8) as u8], &[3u8]);
        assert_eq!(out, vec![-15.0]);
    }

    #[test]
    fn fp16_matches_f32_within_tolerance() {
        let d = desc(2, 4, 3, 3, 1, 1, 1, Precision::Fp16);
        // Build f16 buffers from a known pattern.
        let fvals: Vec<f32> = (0..2 * 4 * 4).map(|i| (i as f32 * 0.125) - 1.0).collect();
        let wvals: Vec<f32> = (0..3 * 2 * 9)
            .map(|i| ((i % 7) as f32 - 3.0) * 0.0625)
            .collect();
        let fbytes = super::super::from_real(&fvals, Precision::Fp16, 1.0);
        let wbytes = super::super::from_real(&wvals, Precision::Fp16, 1.0);
        let out = compute(&d, &fbytes, &wbytes);
        // Reference: exact f32 conv (values chosen representable in f16).
        let d8 = desc(2, 4, 3, 3, 1, 1, 1, Precision::Int8);
        let _ = d8;
        assert_eq!(out.len(), 3 * 4 * 4);
        // Spot check one output by direct summation.
        let mut expect = 0.0f32;
        for ic in 0..2 {
            for ky in 0..3 {
                for kx in 0..3 {
                    let iy = 1 + ky as isize - 1;
                    let ix = 1 + kx as isize - 1;
                    if iy < 0 || ix < 0 || iy > 3 || ix > 3 {
                        continue;
                    }
                    expect += fvals[ic * 16 + iy as usize * 4 + ix as usize]
                        * wvals[ic * 9 + ky * 3 + kx];
                }
            }
        }
        assert!((out[5] - expect).abs() < 1e-3, "{} vs {expect}", out[5]);
    }

    #[test]
    fn stride_subsamples() {
        let d = desc(1, 4, 1, 2, 2, 0, 1, Precision::Int8);
        let feature: Vec<u8> = (0..16i8).map(|v| v as u8).collect();
        let weights = [1u8, 0, 0, 0]; // picks top-left of each window
        let out = compute(&d, &feature, &weights);
        assert_eq!(out, vec![0.0, 2.0, 8.0, 10.0]);
    }

    /// Pseudo-random byte pattern over the shared SplitMix64 core.
    fn pattern(len: usize, seed: u32) -> Vec<u8> {
        let mut rng = rvnv_util::SplitMix64::new(u64::from(seed));
        (0..len).map(|_| (rng.next_u64() >> 16) as u8).collect()
    }

    /// Replace f16 NaN encodings with max-normal values. A NaN *input*
    /// is the one case where IEEE leaves the result underdetermined
    /// (which operand's payload survives `NaN*NaN` is implementation-
    /// defined, and the compiler may commute `fmul`), and encoded
    /// model data never contains NaNs — `from_real` rounds finite
    /// reals. Everything else, including infinities and the canonical
    /// NaNs born from `inf*0`/`inf-inf`, is deterministic.
    fn strip_f16_nans(bytes: &mut [u8]) {
        for p in bytes.chunks_exact_mut(2) {
            let v = u16::from_le_bytes([p[0], p[1]]);
            if v & 0x7C00 == 0x7C00 && v & 0x03FF != 0 {
                let clean = (v & 0x8000) | 0x7BFF; // ±max normal
                p.copy_from_slice(&clean.to_le_bytes());
            }
        }
    }

    /// The blocked path must match the naive reference *bit for bit* —
    /// including fp16, where the summation order is the contract —
    /// across shapes that cover padding, stride, grouping and windows
    /// fully clipped off every edge.
    #[test]
    fn blocked_matches_reference_bit_exact() {
        let shapes = [
            desc(1, 3, 1, 2, 1, 0, 1, Precision::Int8),
            desc(3, 8, 4, 3, 1, 1, 1, Precision::Int8),
            desc(4, 7, 6, 5, 2, 2, 2, Precision::Int8),
            desc(1, 1, 1, 3, 1, 1, 1, Precision::Int8), // pad > data
            desc(2, 5, 2, 5, 1, 4, 1, Precision::Int8), // windows clip all edges
            desc(8, 4, 8, 1, 1, 0, 8, Precision::Int8), // depthwise
            desc(3, 8, 4, 3, 1, 1, 1, Precision::Fp16),
            desc(4, 6, 6, 5, 2, 2, 2, Precision::Fp16),
            desc(2, 5, 2, 5, 1, 4, 1, Precision::Fp16),
        ];
        for (i, mut d) in shapes.into_iter().enumerate() {
            d.in_scale = 0.031;
            d.wt_scale = 0.27;
            let elem = d.precision.bytes() as usize;
            let mut feature = pattern(
                (d.in_c * d.in_h * d.in_w) as usize * elem,
                0xC0FE + i as u32,
            );
            let mut weights = pattern(d.wt_bytes as usize, 0xBEEF + i as u32);
            if d.precision == Precision::Fp16 {
                strip_f16_nans(&mut feature);
                strip_f16_nans(&mut weights);
            }
            let fast = compute(&d, &feature, &weights);
            let slow = compute_reference(&d, &feature, &weights);
            assert_eq!(fast.len(), slow.len(), "shape {i}");
            for (j, (a, b)) in fast.iter().zip(&slow).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "shape {i} output {j}: {a} vs {b}");
            }
        }
    }
}
