//! Convolution pipeline (CDMA → CBUF → CSC → CMAC → CACC) functional
//! model.
//!
//! Computes the accumulator surface for one convolution descriptor.
//! INT8 accumulates exactly in `i32` (as the RTL's 34-bit accumulators
//! do) and converts to real values with the input×weight scale; FP16
//! accumulates in f32 (the RTL uses wider-than-fp16 accumulation too).

use crate::config::Precision;
use crate::descriptor::ConvDesc;
use rvnv_nn::F16;

/// Compute the convolution accumulator as real (f32) values in NCHW
/// output order.
///
/// `feature` and `weights` are the packed DRAM buffers (NCHW / OIHW at
/// the descriptor's precision).
///
/// # Panics
///
/// Panics if the buffers are smaller than the descriptor implies.
#[must_use]
pub fn compute(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    match desc.precision {
        Precision::Int8 => compute_int8(desc, feature, weights),
        Precision::Fp16 => compute_fp16(desc, feature, weights),
    }
}

fn compute_int8(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    let d = Dims::of(desc);
    assert!(feature.len() >= d.in_elems, "feature buffer too small");
    assert!(weights.len() >= d.wt_elems, "weight buffer too small");
    let acc_scale = desc.in_scale * desc.wt_scale;
    let mut out = vec![0.0f32; desc.out_elems()];
    d.for_each_output(|oc, oy, ox, out_idx| {
        let mut acc: i32 = 0;
        d.for_each_tap(oc, oy, ox, |f_idx, w_idx| {
            acc += i32::from(feature[f_idx] as i8) * i32::from(weights[w_idx] as i8);
        });
        out[out_idx] = acc as f32 * acc_scale;
    });
    out
}

fn compute_fp16(desc: &ConvDesc, feature: &[u8], weights: &[u8]) -> Vec<f32> {
    let d = Dims::of(desc);
    assert!(feature.len() >= d.in_elems * 2, "feature buffer too small");
    assert!(weights.len() >= d.wt_elems * 2, "weight buffer too small");
    let f16_at = |buf: &[u8], i: usize| -> f32 {
        F16::from_bits(u16::from_le_bytes([buf[2 * i], buf[2 * i + 1]])).to_f32()
    };
    let mut out = vec![0.0f32; desc.out_elems()];
    d.for_each_output(|oc, oy, ox, out_idx| {
        let mut acc: f32 = 0.0;
        d.for_each_tap(oc, oy, ox, |f_idx, w_idx| {
            acc += f16_at(feature, f_idx) * f16_at(weights, w_idx);
        });
        out[out_idx] = acc;
    });
    out
}

/// Loop bounds shared by both precisions (indices are element indices).
struct Dims {
    in_w: usize,
    in_h: usize,
    in_per_group: usize,
    out_w: usize,
    out_h: usize,
    out_c: usize,
    out_per_group: usize,
    kw: usize,
    kh: usize,
    stride: usize,
    pad: isize,
    in_elems: usize,
    wt_elems: usize,
}

impl Dims {
    fn of(desc: &ConvDesc) -> Self {
        let groups = desc.groups as usize;
        let in_per_group = desc.in_c as usize / groups;
        let out_per_group = desc.out_c as usize / groups;
        Dims {
            in_w: desc.in_w as usize,
            in_h: desc.in_h as usize,
            in_per_group,
            out_w: desc.out_w as usize,
            out_h: desc.out_h as usize,
            out_c: desc.out_c as usize,
            out_per_group,
            kw: desc.kw as usize,
            kh: desc.kh as usize,
            stride: desc.stride as usize,
            pad: desc.pad as isize,
            in_elems: (desc.in_c * desc.in_h * desc.in_w) as usize,
            wt_elems: (desc.out_c * (desc.in_c / desc.groups) * desc.kh * desc.kw) as usize,
        }
    }

    fn for_each_output(&self, mut f: impl FnMut(usize, usize, usize, usize)) {
        let mut idx = 0;
        for oc in 0..self.out_c {
            for oy in 0..self.out_h {
                for ox in 0..self.out_w {
                    f(oc, oy, ox, idx);
                    idx += 1;
                }
            }
        }
    }

    /// Visit every (feature, weight) element-index pair for one output.
    fn for_each_tap(&self, oc: usize, oy: usize, ox: usize, mut f: impl FnMut(usize, usize)) {
        let g = oc / self.out_per_group;
        let in_base_c = g * self.in_per_group;
        for ic in 0..self.in_per_group {
            let f_plane = (in_base_c + ic) * self.in_h * self.in_w;
            let w_plane = ((oc * self.in_per_group) + ic) * self.kh * self.kw;
            for ky in 0..self.kh {
                let iy = (oy * self.stride + ky) as isize - self.pad;
                if iy < 0 || iy as usize >= self.in_h {
                    continue;
                }
                for kx in 0..self.kw {
                    let ix = (ox * self.stride + kx) as isize - self.pad;
                    if ix < 0 || ix as usize >= self.in_w {
                        continue;
                    }
                    f(
                        f_plane + iy as usize * self.in_w + ix as usize,
                        w_plane + ky * self.kw + kx,
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;

    #[allow(clippy::too_many_arguments)]
    fn desc(
        in_c: u32,
        in_hw: u32,
        out_c: u32,
        k: u32,
        stride: u32,
        pad: u32,
        groups: u32,
        precision: Precision,
    ) -> ConvDesc {
        let out_hw = (in_hw + 2 * pad - k) / stride + 1;
        ConvDesc {
            src: 0,
            in_w: in_hw,
            in_h: in_hw,
            in_c,
            wt_addr: 0,
            wt_bytes: out_c * (in_c / groups) * k * k * precision.bytes(),
            stride,
            pad,
            out_w: out_hw,
            out_h: out_hw,
            out_c,
            kw: k,
            kh: k,
            groups,
            in_scale: 1.0,
            wt_scale: 1.0,
            precision,
        }
    }

    #[test]
    fn int8_sum_window() {
        // 3x3 input 1..9, 2x2 kernel of ones.
        let d = desc(1, 3, 1, 2, 1, 0, 1, Precision::Int8);
        let feature: Vec<u8> = (1..=9i8).map(|v| v as u8).collect();
        let weights = vec![1u8; 4];
        let out = compute(&d, &feature, &weights);
        assert_eq!(out, vec![12.0, 16.0, 24.0, 28.0]);
    }

    #[test]
    fn int8_scales_applied() {
        let mut d = desc(1, 1, 1, 1, 1, 0, 1, Precision::Int8);
        d.in_scale = 0.5;
        d.wt_scale = 0.25;
        let out = compute(&d, &[4i8 as u8], &[8i8 as u8]);
        // 4*8 = 32 raw; × 0.5×0.25 = 4.0 real.
        assert_eq!(out, vec![4.0]);
    }

    #[test]
    fn padding_zeros_contribute_nothing() {
        let d = desc(1, 1, 1, 3, 1, 1, 1, Precision::Int8);
        let out = compute(&d, &[5i8 as u8], &[1u8; 9]);
        // Only the center tap sees data.
        assert_eq!(out, vec![5.0]);
    }

    #[test]
    fn grouped_convolution_separates_channels() {
        // 2 channels, 2 groups, 1x1 kernels [2] and [3].
        let d = desc(2, 2, 2, 1, 1, 0, 2, Precision::Int8);
        let feature = [1u8, 1, 1, 1, 1, 1, 1, 1];
        let weights = [2u8, 3];
        let out = compute(&d, &feature, &weights);
        assert_eq!(&out[..4], &[2.0; 4]);
        assert_eq!(&out[4..], &[3.0; 4]);
    }

    #[test]
    fn negative_int8_values() {
        let d = desc(1, 1, 1, 1, 1, 0, 1, Precision::Int8);
        let out = compute(&d, &[(-5i8) as u8], &[3u8]);
        assert_eq!(out, vec![-15.0]);
    }

    #[test]
    fn fp16_matches_f32_within_tolerance() {
        let d = desc(2, 4, 3, 3, 1, 1, 1, Precision::Fp16);
        // Build f16 buffers from a known pattern.
        let fvals: Vec<f32> = (0..2 * 4 * 4).map(|i| (i as f32 * 0.125) - 1.0).collect();
        let wvals: Vec<f32> = (0..3 * 2 * 9)
            .map(|i| ((i % 7) as f32 - 3.0) * 0.0625)
            .collect();
        let fbytes = super::super::from_real(&fvals, Precision::Fp16, 1.0);
        let wbytes = super::super::from_real(&wvals, Precision::Fp16, 1.0);
        let out = compute(&d, &fbytes, &wbytes);
        // Reference: exact f32 conv (values chosen representable in f16).
        let d8 = desc(2, 4, 3, 3, 1, 1, 1, Precision::Int8);
        let _ = d8;
        assert_eq!(out.len(), 3 * 4 * 4);
        // Spot check one output by direct summation.
        let mut expect = 0.0f32;
        for ic in 0..2 {
            for ky in 0..3 {
                for kx in 0..3 {
                    let iy = 1 + ky as isize - 1;
                    let ix = 1 + kx as isize - 1;
                    if iy < 0 || ix < 0 || iy > 3 || ix > 3 {
                        continue;
                    }
                    expect += fvals[ic * 16 + iy as usize * 4 + ix as usize]
                        * wvals[ic * 9 + ky * 3 + kx];
                }
            }
        }
        assert!((out[5] - expect).abs() < 1e-3, "{} vs {expect}", out[5]);
    }

    #[test]
    fn stride_subsamples() {
        let d = desc(1, 4, 1, 2, 2, 0, 1, Precision::Int8);
        let feature: Vec<u8> = (0..16i8).map(|v| v as u8).collect();
        let weights = [1u8, 0, 0, 0]; // picks top-left of each window
        let out = compute(&d, &feature, &weights);
        assert_eq!(out, vec![0.0, 2.0, 8.0, 10.0]);
    }
}
