//! Single-point data processor (SDP) functional model.
//!
//! Applies the per-channel bias/scale table (conv bias, folded
//! batch-norm), optional element-wise addition (ResNet shortcuts) and
//! ReLU, then converts to the output precision and format. This is the
//! engine that writes every layer result back to DRAM.

use crate::descriptor::SdpDesc;
use crate::regs;

/// Per-channel `(scale, shift)` pairs from the bias/scale table.
pub type BsTable = Vec<(f32, f32)>;

/// Parse a raw bias/scale table buffer (8 bytes per channel:
/// f32 scale, f32 shift, little-endian).
#[must_use]
pub fn parse_bs_table(bytes: &[u8]) -> BsTable {
    bytes
        .chunks_exact(8)
        .map(|c| {
            let scale = f32::from_le_bytes([c[0], c[1], c[2], c[3]]);
            let shift = f32::from_le_bytes([c[4], c[5], c[6], c[7]]);
            (scale, shift)
        })
        .collect()
}

/// Apply the SDP pipeline to a surface of real values.
///
/// `input` is in NCHW order with `desc.c * desc.h * desc.w` elements;
/// `input2` must be `Some` iff the eltwise flag is set; `bs` must be
/// `Some` iff the bias flag is set. Returns the packed output bytes at
/// the descriptor's precision.
///
/// # Panics
///
/// Panics if required operands are missing or sized wrong.
#[must_use]
pub fn apply(
    desc: &SdpDesc,
    input: Vec<f32>,
    input2: Option<Vec<f32>>,
    bs: Option<&BsTable>,
) -> Vec<u8> {
    let elems = desc.elems();
    assert_eq!(input.len(), elems, "SDP input size");
    let plane = (desc.h * desc.w) as usize;
    let mut vals = input;

    if desc.has(regs::SDP_FLAG_BIAS) {
        let table = bs.expect("bias flag set but no table");
        assert!(table.len() >= desc.c as usize, "bias table too short");
        for c in 0..desc.c as usize {
            let (scale, shift) = table[c];
            for v in &mut vals[c * plane..(c + 1) * plane] {
                *v = *v * scale + shift;
            }
        }
    }

    if desc.has(regs::SDP_FLAG_ELTWISE) {
        let rhs = input2.expect("eltwise flag set but no second input");
        assert_eq!(rhs.len(), elems, "SDP eltwise size");
        for (v, r) in vals.iter_mut().zip(&rhs) {
            *v += r;
        }
    }

    if desc.has(regs::SDP_FLAG_RELU) {
        for v in &mut vals {
            *v = v.max(0.0);
        }
    }

    super::from_real(&vals, desc.precision, desc.out_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;
    use crate::descriptor::SdpSrc;

    fn desc(c: u32, hw: u32, flags: u32, precision: Precision, out_scale: f32) -> SdpDesc {
        SdpDesc {
            src_mode: SdpSrc::Flying,
            src: 0,
            src2: 0,
            dst: 0,
            w: hw,
            h: hw,
            c,
            bs_addr: 0,
            flags,
            out_scale,
            in_scale: 1.0,
            in2_scale: 1.0,
            precision,
        }
    }

    #[test]
    fn bias_table_is_per_channel() {
        let d = desc(2, 1, regs::SDP_FLAG_BIAS, Precision::Fp16, 1.0);
        let bs = vec![(1.0, 10.0), (2.0, -1.0)];
        let out = apply(&d, vec![1.0, 3.0], None, Some(&bs));
        let vals = super::super::to_real(&out, Precision::Fp16, 1.0);
        assert_eq!(vals, vec![11.0, 5.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let d = desc(1, 2, regs::SDP_FLAG_RELU, Precision::Fp16, 1.0);
        let out = apply(&d, vec![-3.0, 2.0, -0.5, 0.0], None, None);
        let vals = super::super::to_real(&out, Precision::Fp16, 1.0);
        assert_eq!(vals, vec![0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn eltwise_adds_then_relu() {
        let d = desc(
            1,
            1,
            regs::SDP_FLAG_ELTWISE | regs::SDP_FLAG_RELU,
            Precision::Fp16,
            1.0,
        );
        let out = apply(&d, vec![-3.0], Some(vec![1.0]), None);
        let vals = super::super::to_real(&out, Precision::Fp16, 1.0);
        assert_eq!(vals, vec![0.0]);
    }

    #[test]
    fn int8_output_requantizes() {
        let d = desc(1, 1, 0, Precision::Int8, 0.5);
        let out = apply(&d, vec![10.0], None, None);
        assert_eq!(out[0] as i8, 20); // 10 / 0.5
        let d = desc(1, 1, 0, Precision::Int8, 0.01);
        let out = apply(&d, vec![10.0], None, None);
        assert_eq!(out[0] as i8, 127, "saturates");
    }

    #[test]
    fn bs_table_parses_pairs() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&2.0f32.to_le_bytes());
        bytes.extend_from_slice(&(-1.0f32).to_le_bytes());
        bytes.extend_from_slice(&0.5f32.to_le_bytes());
        bytes.extend_from_slice(&3.0f32.to_le_bytes());
        let t = parse_bs_table(&bytes);
        assert_eq!(t, vec![(2.0, -1.0), (0.5, 3.0)]);
    }

    #[test]
    #[should_panic(expected = "no second input")]
    fn missing_eltwise_operand_panics() {
        let d = desc(1, 1, regs::SDP_FLAG_ELTWISE, Precision::Fp16, 1.0);
        let _ = apply(&d, vec![1.0], None, None);
    }
}
