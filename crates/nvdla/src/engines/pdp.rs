//! Planar data processor (PDP): max/average pooling.
//!
//! Operates directly on the packed DRAM format. INT8 max pooling is
//! exact; INT8 average pooling accumulates in i32 and rounds once,
//! matching the RTL's wide adder tree. Average semantics follow Caffe
//! (divide by k², zero padding included), like the compiler expects.

use crate::config::Precision;
use crate::descriptor::{PdpDesc, PoolKind};
use rvnv_nn::F16;

/// Pool a packed surface; returns the packed output.
///
/// # Panics
///
/// Panics if `src` is smaller than the descriptor implies.
#[must_use]
pub fn compute(desc: &PdpDesc, src: &[u8]) -> Vec<u8> {
    match desc.precision {
        Precision::Int8 => compute_int8(desc, src),
        Precision::Fp16 => compute_fp16(desc, src),
    }
}

fn windows(desc: &PdpDesc, mut f: impl FnMut(usize, &[(usize, usize)])) {
    let (in_w, in_h) = (desc.in_w as usize, desc.in_h as usize);
    let (k, stride, pad) = (desc.k as usize, desc.stride as usize, desc.pad as isize);
    let mut taps: Vec<(usize, usize)> = Vec::with_capacity(k * k);
    let mut out_idx = 0usize;
    for _c in 0..desc.c as usize {
        for oy in 0..desc.out_h as usize {
            for ox in 0..desc.out_w as usize {
                taps.clear();
                for ky in 0..k {
                    let iy = (oy * stride + ky) as isize - pad;
                    if iy < 0 || iy as usize >= in_h {
                        continue;
                    }
                    for kx in 0..k {
                        let ix = (ox * stride + kx) as isize - pad;
                        if ix < 0 || ix as usize >= in_w {
                            continue;
                        }
                        taps.push((iy as usize, ix as usize));
                    }
                }
                f(out_idx, &taps);
                out_idx += 1;
            }
        }
    }
}

fn compute_int8(desc: &PdpDesc, src: &[u8]) -> Vec<u8> {
    let plane = (desc.in_w * desc.in_h) as usize;
    assert!(src.len() >= plane * desc.c as usize, "PDP source too small");
    let out_plane = (desc.out_w * desc.out_h) as usize;
    let mut out = vec![0u8; desc.out_elems()];
    let in_w = desc.in_w as usize;
    let k2 = (desc.k * desc.k) as i32;
    windows(desc, |out_idx, taps| {
        let c = out_idx / out_plane;
        let base = c * plane;
        match desc.kind {
            PoolKind::Max => {
                let mut best = i8::MIN;
                for &(y, x) in taps {
                    best = best.max(src[base + y * in_w + x] as i8);
                }
                // Empty window (all padding) yields 0.
                out[out_idx] = if taps.is_empty() { 0 } else { best as u8 };
            }
            PoolKind::Avg => {
                let mut sum: i32 = 0;
                for &(y, x) in taps {
                    sum += i32::from(src[base + y * in_w + x] as i8);
                }
                // Round-half-away like the RTL divider.
                let v = if sum >= 0 {
                    (sum + k2 / 2) / k2
                } else {
                    (sum - k2 / 2) / k2
                };
                out[out_idx] = v.clamp(-127, 127) as i8 as u8;
            }
        }
    });
    out
}

fn compute_fp16(desc: &PdpDesc, src: &[u8]) -> Vec<u8> {
    let plane = (desc.in_w * desc.in_h) as usize;
    assert!(
        src.len() >= plane * desc.c as usize * 2,
        "PDP source too small"
    );
    let out_plane = (desc.out_w * desc.out_h) as usize;
    let mut out = Vec::with_capacity(desc.out_elems() * 2);
    let in_w = desc.in_w as usize;
    let k2 = (desc.k * desc.k) as f32;
    let at = |i: usize| F16::from_bits(u16::from_le_bytes([src[2 * i], src[2 * i + 1]])).to_f32();
    windows(desc, |out_idx, taps| {
        let c = out_idx / out_plane;
        let base = c * plane;
        let v = match desc.kind {
            PoolKind::Max => taps
                .iter()
                .map(|&(y, x)| at(base + y * in_w + x))
                .fold(f32::NEG_INFINITY, f32::max),
            PoolKind::Avg => {
                let sum: f32 = taps.iter().map(|&(y, x)| at(base + y * in_w + x)).sum();
                sum / k2
            }
        };
        let v = if taps.is_empty() { 0.0 } else { v };
        out.extend_from_slice(&F16::from_f32(v).to_bits().to_le_bytes());
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(c: u32, in_hw: u32, k: u32, stride: u32, pad: u32, kind: PoolKind) -> PdpDesc {
        let out_hw = ((in_hw + 2 * pad - k) as usize).div_ceil(stride as usize) as u32 + 1;
        PdpDesc {
            src: 0,
            dst: 0,
            in_w: in_hw,
            in_h: in_hw,
            c,
            kind,
            k,
            stride,
            pad,
            out_w: out_hw,
            out_h: out_hw,
            precision: Precision::Int8,
        }
    }

    #[test]
    fn max_pool_2x2() {
        let d = desc(1, 4, 2, 2, 0, PoolKind::Max);
        let src: Vec<u8> = vec![1, 5, 2, 3, 4, 2, 1, 8, 0, 1, 2, 3, 4, 5, 6, 7];
        let out = compute(&d, &src);
        assert_eq!(out, vec![5, 8, 5, 7]);
    }

    #[test]
    fn max_pool_handles_negatives() {
        let d = desc(1, 2, 2, 2, 0, PoolKind::Max);
        let src = vec![(-5i8) as u8, (-3i8) as u8, (-8i8) as u8, (-4i8) as u8];
        let out = compute(&d, &src);
        assert_eq!(out[0] as i8, -3);
    }

    #[test]
    fn avg_pool_rounds() {
        let d = desc(1, 2, 2, 2, 0, PoolKind::Avg);
        let src = vec![1u8, 2, 3, 4]; // sum 10, /4 = 2.5 -> 3
        let out = compute(&d, &src);
        assert_eq!(out[0] as i8, 3);
    }

    #[test]
    fn global_avg_pool_via_full_kernel() {
        let d = desc(2, 4, 4, 4, 0, PoolKind::Avg);
        assert_eq!((d.out_w, d.out_h), (1, 1));
        let mut src = vec![8u8; 16];
        src.extend(vec![16u8; 16]);
        let out = compute(&d, &src);
        assert_eq!(out[0] as i8, 8);
        assert_eq!(out[1] as i8, 16);
    }

    #[test]
    fn per_channel_independence() {
        let d = desc(2, 2, 2, 2, 0, PoolKind::Max);
        let src = vec![1u8, 2, 3, 4, 10, 20, 30, 40];
        let out = compute(&d, &src);
        assert_eq!(out, vec![4, 40]);
    }

    #[test]
    fn fp16_avg_pool() {
        let mut d = desc(1, 2, 2, 2, 0, PoolKind::Avg);
        d.precision = Precision::Fp16;
        let src = super::super::from_real(&[1.0, 2.0, 3.0, 4.0], Precision::Fp16, 1.0);
        let out = compute(&d, &src);
        let vals = super::super::to_real(&out, Precision::Fp16, 1.0);
        assert_eq!(vals, vec![2.5]);
    }

    #[test]
    fn caffe_ceil_windows_with_padding() {
        // 3x3 input, k=2, stride 2, pad 0 -> Caffe out = ceil(1/2)+1 = 2.
        let d = desc(1, 3, 2, 2, 0, PoolKind::Max);
        assert_eq!((d.out_w, d.out_h), (2, 2));
        let src: Vec<u8> = (1..=9).collect();
        let out = compute(&d, &src);
        // Last column/row windows are partial.
        assert_eq!(out, vec![5, 6, 8, 9]);
    }
}
