//! Functional engine models: pure compute kernels consumed by the
//! register-level top ([`crate::Nvdla`]).

pub mod cdp;
pub mod conv;
pub mod pdp;
pub mod sdp;

use crate::config::Precision;
use rvnv_nn::F16;

/// Decode a packed byte buffer into real (f32) values.
///
/// INT8 buffers are scaled by `scale`; FP16 buffers are exact.
#[must_use]
pub fn to_real(bytes: &[u8], precision: Precision, scale: f32) -> Vec<f32> {
    match precision {
        Precision::Int8 => bytes.iter().map(|&b| f32::from(b as i8) * scale).collect(),
        Precision::Fp16 => bytes
            .chunks_exact(2)
            .map(|c| F16::from_bits(u16::from_le_bytes([c[0], c[1]])).to_f32())
            .collect(),
    }
}

/// Encode real values into a packed byte buffer.
///
/// INT8: `round(v / scale)` saturated to ±127. FP16: round-to-nearest.
#[must_use]
pub fn from_real(values: &[f32], precision: Precision, scale: f32) -> Vec<u8> {
    match precision {
        Precision::Int8 => values
            .iter()
            .map(|v| {
                let q = (v / scale).round().clamp(-127.0, 127.0);
                q as i8 as u8
            })
            .collect(),
        Precision::Fp16 => values
            .iter()
            .flat_map(|v| F16::from_f32(*v).to_bits().to_le_bytes())
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int8_round_trip_with_scale() {
        let vals = [0.0f32, 0.5, -0.5, 1.0, -1.0];
        let bytes = from_real(&vals, Precision::Int8, 1.0 / 127.0);
        let back = to_real(&bytes, Precision::Int8, 1.0 / 127.0);
        for (a, b) in vals.iter().zip(&back) {
            assert!((a - b).abs() < 1.0 / 127.0, "{a} vs {b}");
        }
    }

    #[test]
    fn int8_saturates() {
        let bytes = from_real(&[10.0], Precision::Int8, 0.01);
        assert_eq!(bytes[0] as i8, 127);
        let bytes = from_real(&[-10.0], Precision::Int8, 0.01);
        assert_eq!(bytes[0] as i8, -127);
    }

    #[test]
    fn fp16_round_trip_exact_for_representable() {
        let vals = [1.0f32, -0.5, 1024.0, 0.0];
        let bytes = from_real(&vals, Precision::Fp16, 1.0);
        assert_eq!(bytes.len(), 8);
        assert_eq!(to_real(&bytes, Precision::Fp16, 1.0), vals);
    }
}
