//! Channel data processor (CDP): local response normalization.
//!
//! The RTL computes LRN with a look-up table; we compute the same
//! function (`x / (k + alpha/n * sum(x²))^beta`) in f32, dequantizing
//! and requantizing around it in INT8 mode — the same numeric contract
//! at table-resolution accuracy.

use crate::descriptor::CdpDesc;

/// Apply LRN to a packed surface; returns the packed output.
///
/// # Panics
///
/// Panics if `src` is smaller than the descriptor implies.
#[must_use]
pub fn compute(desc: &CdpDesc, src: &[u8]) -> Vec<u8> {
    let vals = super::to_real(src, desc.precision, desc.in_scale);
    let elems = desc.elems();
    assert!(vals.len() >= elems, "CDP source too small");
    let plane = (desc.h * desc.w) as usize;
    let c = desc.c as usize;
    let half = (desc.local_size / 2) as usize;
    let n = desc.local_size as f32;
    let mut out = vec![0.0f32; elems];
    for ch in 0..c {
        let lo = ch.saturating_sub(half);
        let hi = (ch + half).min(c - 1);
        for p in 0..plane {
            let mut sum_sq = 0.0f32;
            for cc in lo..=hi {
                let v = vals[cc * plane + p];
                sum_sq += v * v;
            }
            let denom = (desc.k + desc.alpha * sum_sq / n).powf(desc.beta);
            out[ch * plane + p] = vals[ch * plane + p] / denom;
        }
    }
    super::from_real(&out, desc.precision, desc.out_scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;

    fn desc(c: u32, hw: u32, precision: Precision) -> CdpDesc {
        CdpDesc {
            src: 0,
            dst: 0,
            w: hw,
            h: hw,
            c,
            local_size: 5,
            alpha: 1e-4,
            beta: 0.75,
            k: 1.0,
            precision,
            in_scale: 1.0,
            out_scale: 1.0,
        }
    }

    #[test]
    fn fp16_lrn_matches_reference_formula() {
        let d = desc(5, 1, Precision::Fp16);
        let vals = [1.0f32, 2.0, 3.0, -2.0, 0.5];
        let src = super::super::from_real(&vals, Precision::Fp16, 1.0);
        let out = compute(&d, &src);
        let got = super::super::to_real(&out, Precision::Fp16, 1.0);
        // Channel 2 sees the full window (all 5 channels).
        let sum_sq: f32 = vals.iter().map(|v| v * v).sum();
        let expect = 3.0 / (1.0 + 1e-4 * sum_sq / 5.0).powf(0.75);
        assert!((got[2] - expect).abs() < 2e-3, "{} vs {expect}", got[2]);
    }

    #[test]
    fn small_activations_pass_nearly_unchanged() {
        let d = desc(3, 2, Precision::Fp16);
        let vals = [0.01f32; 12];
        let src = super::super::from_real(&vals, Precision::Fp16, 1.0);
        let out = compute(&d, &src);
        let got = super::super::to_real(&out, Precision::Fp16, 1.0);
        for v in got {
            assert!((v - 0.01).abs() < 1e-4);
        }
    }

    #[test]
    fn int8_lrn_round_trips_scales() {
        let mut d = desc(3, 1, Precision::Int8);
        d.in_scale = 0.1;
        d.out_scale = 0.1;
        // Values 5, 10, 20 (quantized at 0.1): real 0.5, 1.0, 2.0.
        let src = vec![5u8, 10, 20];
        let out = compute(&d, &src);
        // LRN barely changes these magnitudes with alpha=1e-4.
        assert_eq!(out.len(), 3);
        let got: Vec<i8> = out.iter().map(|&b| b as i8).collect();
        assert!((i32::from(got[0]) - 5).abs() <= 1);
        assert!((i32::from(got[2]) - 20).abs() <= 1);
    }

    #[test]
    fn edge_channels_use_truncated_window() {
        let d = desc(5, 1, Precision::Fp16);
        let vals = [10.0f32, 0.0, 0.0, 0.0, 10.0];
        let src = super::super::from_real(&vals, Precision::Fp16, 1.0);
        let out = compute(&d, &src);
        let got = super::super::to_real(&out, Precision::Fp16, 1.0);
        // Symmetric input -> symmetric output.
        assert!((got[0] - got[4]).abs() < 1e-3);
        assert!(got[0] < 10.0);
    }
}
