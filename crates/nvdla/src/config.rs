//! NVDLA hardware configurations (`nv_small`, `nv_full`).
//!
//! The paper evaluates both: `nv_small` (INT8 only, fits the ZCU102) on
//! the FPGA, and `nv_full` (adds FP16, too large for the ZCU102) in
//! simulation. The numbers below follow the official hardware
//! configuration headers: `nv_small` has an 8×8 INT8 MAC array and a
//! 128 KB convolution buffer with a 64-bit DBB; `nv_full` has a
//! 2048-MAC INT8 / 1024-MAC FP16 array, a 512 KB buffer and a 512-bit
//! DBB.

use std::fmt;

/// Numeric precision of an NVDLA operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Precision {
    /// 8-bit integer (supported by every configuration).
    Int8,
    /// 16-bit float (`nv_full` only).
    Fp16,
}

impl Precision {
    /// Bytes per element.
    #[must_use]
    pub fn bytes(self) -> u32 {
        match self {
            Precision::Int8 => 1,
            Precision::Fp16 => 2,
        }
    }
}

impl fmt::Display for Precision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Precision::Int8 => write!(f, "int8"),
            Precision::Fp16 => write!(f, "fp16"),
        }
    }
}

/// A hardware configuration of the accelerator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HwConfig {
    /// Configuration name (`nv_small`, `nv_full`).
    pub name: &'static str,
    /// Input channels processed per cycle (atomic-C).
    pub atomic_c: u32,
    /// Kernels (output channels) processed in parallel (atomic-K).
    pub atomic_k: u32,
    /// Convolution buffer size in KiB.
    pub cbuf_kib: u32,
    /// DBB (data backbone) width in bytes.
    pub dbb_bytes: u32,
    /// Whether FP16 is implemented.
    pub fp16: bool,
    /// Post-processing (SDP/PDP/CDP) throughput in elements per cycle.
    pub pp_throughput: u32,
    /// Fixed latency charged per hardware operation: CDMA
    /// initialization, pipeline fill/drain across the six conv stages,
    /// and interrupt delivery. Dominates tiny layers, which is why
    /// many-layer networks on small inputs (ResNet-18 at 32×32) run far
    /// below peak utilization.
    pub op_latency: u64,
    /// Maximum bytes per MCIF memory request; larger transfers split
    /// into multiple requests, each paying the controller round trip.
    pub mcif_burst_bytes: u32,
}

impl HwConfig {
    /// The `nv_small` configuration (64 INT8 MACs).
    #[must_use]
    pub fn nv_small() -> Self {
        HwConfig {
            name: "nv_small",
            atomic_c: 8,
            atomic_k: 8,
            cbuf_kib: 128,
            dbb_bytes: 8,
            fp16: false,
            pp_throughput: 1,
            op_latency: 2500,
            mcif_burst_bytes: 128,
        }
    }

    /// The `nv_full` configuration (2048 INT8 / 1024 FP16 MACs).
    #[must_use]
    pub fn nv_full() -> Self {
        HwConfig {
            name: "nv_full",
            atomic_c: 64,
            atomic_k: 32,
            cbuf_kib: 512,
            dbb_bytes: 64,
            fp16: true,
            pp_throughput: 16,
            op_latency: 4000,
            mcif_burst_bytes: 1024,
        }
    }

    /// MACs available at the given precision (FP16 halves the array).
    ///
    /// # Panics
    ///
    /// Panics if FP16 is requested on a configuration without FP16.
    #[must_use]
    pub fn macs(&self, precision: Precision) -> u32 {
        match precision {
            Precision::Int8 => self.atomic_c * self.atomic_k,
            Precision::Fp16 => {
                assert!(self.fp16, "{} does not implement FP16", self.name);
                self.atomic_c * self.atomic_k / 2
            }
        }
    }

    /// Whether this configuration can execute at `precision`.
    #[must_use]
    pub fn supports(&self, precision: Precision) -> bool {
        match precision {
            Precision::Int8 => true,
            Precision::Fp16 => self.fp16,
        }
    }
}

impl Default for HwConfig {
    fn default() -> Self {
        Self::nv_small()
    }
}

impl fmt::Display for HwConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_has_64_int8_macs() {
        let c = HwConfig::nv_small();
        assert_eq!(c.macs(Precision::Int8), 64);
        assert!(!c.supports(Precision::Fp16));
    }

    #[test]
    fn full_has_2048_int8_and_1024_fp16_macs() {
        let c = HwConfig::nv_full();
        assert_eq!(c.macs(Precision::Int8), 2048);
        assert_eq!(c.macs(Precision::Fp16), 1024);
        assert!(c.supports(Precision::Fp16));
    }

    #[test]
    #[should_panic(expected = "does not implement FP16")]
    fn small_fp16_macs_panics() {
        let _ = HwConfig::nv_small().macs(Precision::Fp16);
    }

    #[test]
    fn full_is_strictly_bigger() {
        let s = HwConfig::nv_small();
        let f = HwConfig::nv_full();
        assert!(f.atomic_c > s.atomic_c);
        assert!(f.cbuf_kib > s.cbuf_kib);
        assert!(f.dbb_bytes > s.dbb_bytes);
        assert!(f.pp_throughput > s.pp_throughput);
    }
}
