//! CSB register address map.
//!
//! Follows the block layout of the official NVDLA address space (4 KB
//! per sub-unit, GLB first). Register offsets within blocks are this
//! model's own, documented layout: the paper's flow never hand-writes
//! addresses — they are produced by the compiler and consumed by the
//! trace player, so consistency (not bit-exactness with the RTL) is
//! what matters. All addresses are byte addresses within the NVDLA CSB
//! window (`0x0 .. 0xFFFFF` in the SoC map).

/// One functional sub-unit (register block) of the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Block {
    /// Global: version, interrupt mask/status.
    Glb,
    /// Convolution DMA (feature/weight fetch).
    Cdma,
    /// Convolution sequence controller.
    Csc,
    /// Convolution MAC array.
    Cmac,
    /// Convolution accumulator.
    Cacc,
    /// Single-point data processor (bias/BN/ReLU/eltwise, write DMA).
    Sdp,
    /// Planar data processor (pooling).
    Pdp,
    /// Channel data processor (LRN).
    Cdp,
    /// Data-reshape engine (used as channel-aware copy).
    Rubik,
    /// Bulk DMA engine.
    Bdma,
}

impl Block {
    /// All blocks in address order.
    pub const ALL: [Block; 10] = [
        Block::Glb,
        Block::Cdma,
        Block::Csc,
        Block::Cmac,
        Block::Cacc,
        Block::Sdp,
        Block::Pdp,
        Block::Cdp,
        Block::Rubik,
        Block::Bdma,
    ];

    /// Base byte address of the block in the CSB window.
    #[must_use]
    pub fn base(self) -> u32 {
        match self {
            Block::Glb => 0x0000,
            Block::Cdma => 0x1000,
            Block::Csc => 0x2000,
            Block::Cmac => 0x3000,
            Block::Cacc => 0x4000,
            Block::Sdp => 0x5000,
            Block::Pdp => 0x6000,
            Block::Cdp => 0x7000,
            Block::Rubik => 0x8000,
            Block::Bdma => 0x9000,
        }
    }

    /// Block decoding of a CSB byte address.
    #[must_use]
    pub fn of_addr(addr: u32) -> Option<Block> {
        Block::ALL
            .into_iter()
            .find(|b| addr >> 12 == b.base() >> 12)
    }

    /// Interrupt bit index in `GLB_INTR_STATUS` for engines that raise
    /// interrupts (`None` for pass-through blocks).
    #[must_use]
    pub fn intr_bit(self) -> Option<u32> {
        match self {
            Block::Cacc => Some(0),
            Block::Sdp => Some(1),
            Block::Pdp => Some(2),
            Block::Cdp => Some(3),
            Block::Rubik => Some(4),
            Block::Bdma => Some(5),
            _ => None,
        }
    }

    /// Short lower-case name as used in VP log lines.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Block::Glb => "glb",
            Block::Cdma => "cdma",
            Block::Csc => "csc",
            Block::Cmac => "cmac_a",
            Block::Cacc => "cacc",
            Block::Sdp => "sdp",
            Block::Pdp => "pdp",
            Block::Cdp => "cdp",
            Block::Rubik => "rubik",
            Block::Bdma => "bdma",
        }
    }
}

// --- GLB registers --------------------------------------------------------
/// Hardware version (RO).
pub const GLB_HW_VERSION: u32 = 0x0000;
/// Interrupt mask (1 = masked).
pub const GLB_INTR_MASK: u32 = 0x0004;
/// Interrupt set (write 1 to raise, for tests).
pub const GLB_INTR_SET: u32 = 0x0008;
/// Interrupt status (write 1 to clear).
pub const GLB_INTR_STATUS: u32 = 0x000C;

/// Value read from [`GLB_HW_VERSION`].
pub const HW_VERSION_VALUE: u32 = 0x0001_51A0;

// --- Common per-engine register offsets (within each block) ---------------
/// Engine status (RO): 0 idle, 1 running.
pub const REG_STATUS: u32 = 0x00;
/// Producer/consumer pointer (stored, single-group model).
pub const REG_POINTER: u32 = 0x04;
/// Operation enable: writing 1 launches the configured operation.
pub const REG_OP_ENABLE: u32 = 0x08;

// --- CDMA ------------------------------------------------------------------
/// Input feature DRAM address.
pub const CDMA_DATAIN_ADDR: u32 = 0x14;
/// Input feature size: `width | height << 16`.
pub const CDMA_DATAIN_SIZE0: u32 = 0x18;
/// Input feature channels.
pub const CDMA_DATAIN_SIZE1: u32 = 0x1C;
/// Weight DRAM address.
pub const CDMA_WEIGHT_ADDR: u32 = 0x20;
/// Weight bytes.
pub const CDMA_WEIGHT_BYTES: u32 = 0x24;
/// Convolution stride.
pub const CDMA_CONV_STRIDE: u32 = 0x28;
/// Zero padding.
pub const CDMA_ZERO_PADDING: u32 = 0x2C;
/// Input activation scale (f32 bits, INT8 mode).
pub const CDMA_IN_SCALE: u32 = 0x30;
/// Weight scale (f32 bits, INT8 mode).
pub const CDMA_WT_SCALE: u32 = 0x34;

// --- CSC -------------------------------------------------------------------
/// Output size: `width | height << 16`.
pub const CSC_DATAOUT_SIZE0: u32 = 0x14;
/// Output channels (kernels).
pub const CSC_DATAOUT_SIZE1: u32 = 0x18;
/// Kernel size: `kw | kh << 16`.
pub const CSC_WEIGHT_SIZE0: u32 = 0x1C;
/// Convolution group count.
pub const CSC_GROUPS: u32 = 0x20;

// --- CMAC ------------------------------------------------------------------
/// Misc control: bit 0 precision (0 = INT8, 1 = FP16).
pub const CMAC_MISC: u32 = 0x14;

// --- SDP -------------------------------------------------------------------
/// Source select: 0 = flying (from CACC), 1 = memory.
pub const SDP_SRC: u32 = 0x14;
/// Source DRAM address (memory mode).
pub const SDP_SRC_ADDR: u32 = 0x18;
/// Second source address (eltwise).
pub const SDP_SRC2_ADDR: u32 = 0x1C;
/// Destination DRAM address.
pub const SDP_DST_ADDR: u32 = 0x20;
/// Surface size: `width | height << 16`.
pub const SDP_SIZE0: u32 = 0x24;
/// Channels.
pub const SDP_SIZE1: u32 = 0x28;
/// Per-channel bias/scale table DRAM address (8 bytes per channel:
/// f32 scale then f32 shift).
pub const SDP_BS_ADDR: u32 = 0x2C;
/// Flags: bit0 ReLU, bit1 bias table, bit2 eltwise add.
pub const SDP_FLAGS: u32 = 0x30;
/// Output scale (f32 bits, INT8 mode).
pub const SDP_OUT_SCALE: u32 = 0x34;
/// Input scale (f32 bits; for memory-mode INT8 sources).
pub const SDP_IN_SCALE: u32 = 0x38;
/// Second-input scale (f32 bits, eltwise INT8).
pub const SDP_IN2_SCALE: u32 = 0x3C;
/// Precision: 0 INT8, 1 FP16.
pub const SDP_PRECISION: u32 = 0x40;

/// [`SDP_FLAGS`] bit: apply ReLU.
pub const SDP_FLAG_RELU: u32 = 1 << 0;
/// [`SDP_FLAGS`] bit: apply the per-channel bias/scale table.
pub const SDP_FLAG_BIAS: u32 = 1 << 1;
/// [`SDP_FLAGS`] bit: element-wise add of the second source.
pub const SDP_FLAG_ELTWISE: u32 = 1 << 2;

// --- PDP -------------------------------------------------------------------
/// Source DRAM address.
pub const PDP_SRC_ADDR: u32 = 0x14;
/// Destination DRAM address.
pub const PDP_DST_ADDR: u32 = 0x18;
/// Input size: `width | height << 16`.
pub const PDP_SIZE_IN: u32 = 0x1C;
/// Channels.
pub const PDP_CHANNELS: u32 = 0x20;
/// Pooling control: bit0 kind (0 max, 1 avg), bits 8..16 kernel,
/// bits 16..24 stride, bits 24..32 pad.
pub const PDP_POOLING: u32 = 0x24;
/// Output size: `width | height << 16`.
pub const PDP_SIZE_OUT: u32 = 0x28;
/// Precision: 0 INT8, 1 FP16.
pub const PDP_PRECISION: u32 = 0x2C;
/// Input scale (f32 bits, INT8 average pooling rounding).
pub const PDP_IN_SCALE: u32 = 0x30;

// --- CDP -------------------------------------------------------------------
/// Source DRAM address.
pub const CDP_SRC_ADDR: u32 = 0x14;
/// Destination DRAM address.
pub const CDP_DST_ADDR: u32 = 0x18;
/// Surface size: `width | height << 16`.
pub const CDP_SIZE: u32 = 0x1C;
/// Channels.
pub const CDP_CHANNELS: u32 = 0x20;
/// LRN window (local size, odd).
pub const CDP_LRN_SIZE: u32 = 0x24;
/// LRN alpha (f32 bits).
pub const CDP_ALPHA: u32 = 0x28;
/// LRN beta (f32 bits).
pub const CDP_BETA: u32 = 0x2C;
/// LRN k (f32 bits).
pub const CDP_K: u32 = 0x30;
/// Precision: 0 INT8, 1 FP16.
pub const CDP_PRECISION: u32 = 0x34;
/// Input scale (f32 bits, INT8).
pub const CDP_IN_SCALE: u32 = 0x38;
/// Output scale (f32 bits, INT8).
pub const CDP_OUT_SCALE: u32 = 0x3C;

// --- RUBIK / BDMA ----------------------------------------------------------
/// Source DRAM address.
pub const COPY_SRC_ADDR: u32 = 0x14;
/// Destination DRAM address.
pub const COPY_DST_ADDR: u32 = 0x18;
/// Length in bytes.
pub const COPY_LEN: u32 = 0x1C;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blocks_are_4k_apart_and_decode() {
        for b in Block::ALL {
            assert_eq!(b.base() & 0xFFF, 0);
            assert_eq!(Block::of_addr(b.base()), Some(b));
            assert_eq!(Block::of_addr(b.base() + 0xFFC), Some(b));
        }
        assert_eq!(Block::of_addr(0xA000), None);
    }

    #[test]
    fn intr_bits_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for b in Block::ALL {
            if let Some(bit) = b.intr_bit() {
                assert!(seen.insert(bit), "duplicate intr bit {bit}");
            }
        }
        assert_eq!(seen.len(), 6);
    }

    #[test]
    fn glb_has_no_intr_bit() {
        assert_eq!(Block::Glb.intr_bit(), None);
        assert_eq!(Block::Cdma.intr_bit(), None);
    }
}
