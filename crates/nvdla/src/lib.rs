//! Register-level functional + timing model of the NVIDIA Deep Learning
//! Accelerator (NVDLA).
//!
//! The paper integrates the open-source NVDLA RTL (`nv_small` on the
//! FPGA, `nv_full` in simulation) behind an APB-to-CSB adapter and a
//! 64-bit AXI data backbone (DBB). This crate models the accelerator at
//! the same boundary the paper's bare-metal software sees:
//!
//! * a CSB register window ([`regs`]) with per-engine `D_*` config
//!   registers, `OP_ENABLE` launches and `GLB_INTR_STATUS` polling,
//! * functional engines ([`engines`]): the convolution pipeline
//!   (CDMA/CSC/CMAC/CACC), SDP (bias/BN/ReLU/eltwise), PDP (pooling),
//!   CDP (LRN) and RUBIK/BDMA copies,
//! * a dataflow-accurate timing model ([`timing`]) parameterized by the
//!   hardware configuration ([`config::HwConfig`]),
//! * DMA through any [`rvnv_bus::Target`], so DRAM latency, width
//!   conversion and arbitration are inherited from the SoC's bus models.
//!
//! # Example
//!
//! Programming a pooling operation exactly as the bare-metal firmware
//! does — register writes, then polling the interrupt status:
//!
//! ```
//! use rvnv_bus::{Request, Target};
//! use rvnv_bus::sram::Sram;
//! use rvnv_nvdla::{config::HwConfig, regs, regs::Block, Nvdla};
//!
//! # fn main() -> Result<(), rvnv_bus::BusError> {
//! let mut dla = Nvdla::new(HwConfig::nv_small(), Sram::new(4096));
//! dla.dbb_mut().load(0x100, &[1, 5, 2, 3]).unwrap(); // 2x2 int8 plane
//! let base = Block::Pdp.base();
//! let mut t = 0;
//! for (off, val) in [
//!     (regs::PDP_SRC_ADDR, 0x100),
//!     (regs::PDP_DST_ADDR, 0x200),
//!     (regs::PDP_SIZE_IN, 2 | (2 << 16)),
//!     (regs::PDP_CHANNELS, 1),
//!     (regs::PDP_POOLING, 2 << 8 | 2 << 16), // max, k=2, stride=2
//!     (regs::PDP_SIZE_OUT, 1 | (1 << 16)),
//!     (regs::REG_OP_ENABLE, 1),
//! ] {
//!     t = dla.access(&Request::write32(base + off, val), t)?.done_at;
//! }
//! // Poll until the PDP interrupt bit rises.
//! let mut status = 0;
//! while status & (1 << 2) == 0 {
//!     let r = dla.access(&Request::read32(regs::GLB_INTR_STATUS), t)?;
//!     status = r.data32();
//!     t = r.done_at + 100;
//! }
//! assert_eq!(dla.dbb_mut().bytes()[0x200], 5); // max of the plane
//! # Ok(())
//! # }
//! ```

pub mod config;
pub mod descriptor;
pub mod engines;
pub mod regs;
pub mod timing;

mod nvdla;

pub use config::{HwConfig, Precision};
pub use nvdla::{EngineStats, Nvdla, NvdlaStats, OpTrace};
