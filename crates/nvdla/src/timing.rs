//! Engine timing model.
//!
//! Compute cycles follow the MAC-array dataflow: every cycle the CMAC
//! array consumes `atomic_c` input channels for `atomic_k` kernels at
//! one kernel tap, so a convolution needs
//! `out_h × out_w × kh × kw × ceil(in_c/atomic_c) × ceil(out_c/atomic_k)`
//! cycles per group. This is what makes shallow-channel layers (LeNet's
//! 1-channel input, depthwise convolutions) far less efficient than the
//! raw MAC count suggests — the behaviour responsible for the shape of
//! the paper's Tables II/III.

use crate::config::HwConfig;
use crate::descriptor::{CdpDesc, ConvDesc, PdpDesc, SdpDesc};

/// Compute cycles for one convolution (excluding DMA, which is timed by
/// the DBB transactions themselves).
#[must_use]
pub fn conv_cycles(cfg: &HwConfig, d: &ConvDesc) -> u64 {
    let in_per_group = (d.in_c / d.groups).max(1);
    let out_per_group = (d.out_c / d.groups).max(1);
    let c_steps = u64::from(in_per_group.div_ceil(cfg.atomic_c));
    let k_steps = u64::from(out_per_group.div_ceil(cfg.atomic_k));
    let taps = u64::from(d.kh) * u64::from(d.kw);
    let pixels = u64::from(d.out_h) * u64::from(d.out_w);
    let per_group = pixels * taps * c_steps * k_steps;
    per_group * u64::from(d.groups) + cfg.op_latency
}

/// Number of weight passes forced by the convolution buffer: weights
/// stream through half of CBUF (the other half holds feature data), so
/// oversized kernels are re-fetched per pass along with the feature
/// tile.
#[must_use]
pub fn cbuf_passes(cfg: &HwConfig, weight_bytes: u32) -> u32 {
    let half = cfg.cbuf_kib * 1024 / 2;
    weight_bytes.div_ceil(half).max(1)
}

/// Compute cycles for an SDP surface.
#[must_use]
pub fn sdp_cycles(cfg: &HwConfig, d: &SdpDesc) -> u64 {
    (d.elems() as u64).div_ceil(u64::from(cfg.pp_throughput)) + cfg.op_latency
}

/// Compute cycles for a pooling operation.
#[must_use]
pub fn pdp_cycles(cfg: &HwConfig, d: &PdpDesc) -> u64 {
    let window = u64::from(d.k) * u64::from(d.k);
    (d.out_elems() as u64 * window).div_ceil(u64::from(cfg.pp_throughput)) + cfg.op_latency
}

/// Compute cycles for an LRN operation.
#[must_use]
pub fn cdp_cycles(cfg: &HwConfig, d: &CdpDesc) -> u64 {
    (d.elems() as u64 * u64::from(d.local_size)).div_ceil(u64::from(cfg.pp_throughput))
        + cfg.op_latency
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Precision;

    fn conv_desc(in_c: u32, out_c: u32, hw: u32, k: u32, groups: u32) -> ConvDesc {
        ConvDesc {
            src: 0,
            in_w: hw,
            in_h: hw,
            in_c,
            wt_addr: 0,
            wt_bytes: out_c * (in_c / groups) * k * k,
            stride: 1,
            pad: 0,
            out_w: hw - k + 1,
            out_h: hw - k + 1,
            out_c,
            kw: k,
            kh: k,
            groups,
            in_scale: 1.0,
            wt_scale: 1.0,
            precision: Precision::Int8,
        }
    }

    #[test]
    fn full_channels_hit_peak_rate() {
        let cfg = HwConfig::nv_small();
        // 8 in, 8 out exactly fills the 8x8 array: 1 MAC-cycle per tap.
        let d = conv_desc(8, 8, 10, 3, 1);
        let cycles = conv_cycles(&cfg, &d) - cfg.op_latency;
        assert_eq!(cycles, 8 * 8 * 9);
        // Equals MACs / peak MACs.
        assert_eq!(cycles, d.macs() / u64::from(cfg.macs(Precision::Int8)));
    }

    #[test]
    fn shallow_input_wastes_lanes() {
        let cfg = HwConfig::nv_small();
        // 1 input channel still occupies a full atomic-C slot.
        let d = conv_desc(1, 8, 10, 3, 1);
        let cycles = conv_cycles(&cfg, &d) - cfg.op_latency;
        let ideal = d.macs() / u64::from(cfg.macs(Precision::Int8));
        assert_eq!(cycles, 8 * 8 * 9);
        assert_eq!(cycles, ideal * 8, "1/8 utilization on 1-channel input");
    }

    #[test]
    fn depthwise_is_inefficient() {
        let cfg = HwConfig::nv_full();
        // Depthwise 64 channels: each group uses 1 of 64 lanes.
        let dw = conv_desc(64, 64, 16, 3, 64);
        let dense = conv_desc(64, 64, 16, 3, 1);
        // Per-group utilization is 1/(atomic_c) on the C axis and
        // 1/atomic_k on the K axis; expect a >25x penalty on the MAC
        // time itself (the fixed op latency is common to both).
        let dw_macs = conv_cycles(&cfg, &dw) - cfg.op_latency;
        let dense_macs = conv_cycles(&cfg, &dense) - cfg.op_latency;
        assert!(dw_macs > dense_macs * 25, "{dw_macs} vs {dense_macs}");
    }

    #[test]
    fn nv_full_is_faster_than_nv_small() {
        let small = HwConfig::nv_small();
        let full = HwConfig::nv_full();
        let d = conv_desc(64, 64, 32, 3, 1);
        let t_small = conv_cycles(&small, &d);
        let t_full = conv_cycles(&full, &d);
        assert!(
            t_small > t_full * 10,
            "small {t_small} vs full {t_full}: expect >10x"
        );
    }

    #[test]
    fn cbuf_passes_scale_with_weight_size() {
        let cfg = HwConfig::nv_small(); // 64 KiB half-buffer
        assert_eq!(cbuf_passes(&cfg, 0), 1);
        assert_eq!(cbuf_passes(&cfg, 64 * 1024), 1);
        assert_eq!(cbuf_passes(&cfg, 64 * 1024 + 1), 2);
        assert_eq!(cbuf_passes(&cfg, 400 * 1024), 7);
    }

    #[test]
    fn post_processor_throughput_divides() {
        let small = HwConfig::nv_small();
        let full = HwConfig::nv_full();
        let d = SdpDesc {
            src_mode: crate::descriptor::SdpSrc::Flying,
            src: 0,
            src2: 0,
            dst: 0,
            w: 32,
            h: 32,
            c: 16,
            bs_addr: 0,
            flags: 0,
            out_scale: 1.0,
            in_scale: 1.0,
            in2_scale: 1.0,
            precision: Precision::Int8,
        };
        let ts = sdp_cycles(&small, &d) - small.op_latency;
        let tf = sdp_cycles(&full, &d) - full.op_latency;
        assert_eq!(ts, 16 * 32 * 32);
        assert_eq!(tf, 16 * 32 * 32 / 16);
    }
}
