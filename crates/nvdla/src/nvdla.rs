//! The register-programmed accelerator model.
//!
//! [`Nvdla`] implements [`Target`] for its CSB window: the µRISC-V core
//! (through the AHB→APB→CSB path) programs `D_*` registers and launches
//! operations by writing `OP_ENABLE`; completion raises bits in
//! `GLB_INTR_STATUS`, which bare-metal firmware polls. Data moves over
//! the DBB port (`D`), a [`Target`] that the SoC routes through the
//! 64→32-bit width converter and the DRAM arbiter — so DMA time and
//! contention with the core come out of the bus models, not constants.

use std::collections::BTreeMap;

use rvnv_bus::{AccessKind, AccessSize, BusError, Cycle, Request, Reset, Response, Target};

use crate::config::HwConfig;
use crate::descriptor::{CdpDesc, ConvDesc, CopyDesc, PdpDesc, SdpDesc, SdpSrc};
use crate::engines::{self, cdp, conv, pdp, sdp};
use crate::regs::{self, Block};
use crate::timing;

/// Per-engine activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Operations completed.
    pub ops: u64,
    /// Pure compute cycles (excluding DMA).
    pub compute_cycles: u64,
    /// Bytes read over the DBB.
    pub dma_read_bytes: u64,
    /// Bytes written over the DBB.
    pub dma_write_bytes: u64,
    /// Multiply-accumulates performed.
    pub macs: u64,
}

/// Whole-accelerator statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NvdlaStats {
    /// CSB register reads observed.
    pub csb_reads: u64,
    /// CSB register writes observed.
    pub csb_writes: u64,
    per_engine: BTreeMap<Block, EngineStats>,
}

impl NvdlaStats {
    /// Stats for one engine block.
    #[must_use]
    pub fn engine(&self, block: Block) -> EngineStats {
        self.per_engine.get(&block).copied().unwrap_or_default()
    }

    /// Total operations across engines.
    #[must_use]
    pub fn total_ops(&self) -> u64 {
        self.per_engine.values().map(|e| e.ops).sum()
    }

    /// Total DBB traffic in bytes.
    #[must_use]
    pub fn total_dma_bytes(&self) -> u64 {
        self.per_engine
            .values()
            .map(|e| e.dma_read_bytes + e.dma_write_bytes)
            .sum()
    }

    /// Total MACs.
    #[must_use]
    pub fn total_macs(&self) -> u64 {
        self.per_engine.values().map(|e| e.macs).sum()
    }

    /// Publish these counters into a [`rvnv_obs::MetricsRegistry`]
    /// under the `nvdla.*` namespace (whole-accelerator totals; the
    /// per-engine breakdown stays on [`NvdlaStats::engine`]).
    pub fn publish(&self, metrics: &rvnv_obs::MetricsRegistry) {
        metrics.counter("nvdla.csb_reads", self.csb_reads);
        metrics.counter("nvdla.csb_writes", self.csb_writes);
        metrics.counter("nvdla.ops", self.total_ops());
        metrics.counter("nvdla.dma_bytes", self.total_dma_bytes());
        metrics.counter("nvdla.macs", self.total_macs());
        metrics.counter(
            "nvdla.compute_cycles",
            self.per_engine.values().map(|e| e.compute_cycles).sum(),
        );
    }
}

#[derive(Debug, Clone, Copy)]
struct Event {
    done_at: Cycle,
    bits: u32,
}

/// One completed operation on the execution timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpTrace {
    /// Engine that executed the operation.
    pub block: Block,
    /// Cycle the launch was accepted.
    pub start: Cycle,
    /// Completion (interrupt) cycle.
    pub done: Cycle,
}

/// The NVDLA accelerator.
#[derive(Debug)]
pub struct Nvdla<D> {
    cfg: HwConfig,
    dbb: D,
    regs: BTreeMap<u32, u32>,
    intr_status: u32,
    events: Vec<Event>,
    busy_until: BTreeMap<Block, Cycle>,
    sdp_armed: bool,
    functional: bool,
    stats: NvdlaStats,
    timeline: Vec<OpTrace>,
}

impl<D: Target> Nvdla<D> {
    /// Create an accelerator with the given configuration and DBB port.
    pub fn new(cfg: HwConfig, dbb: D) -> Self {
        Nvdla {
            cfg,
            dbb,
            regs: BTreeMap::new(),
            intr_status: 0,
            events: Vec::new(),
            busy_until: BTreeMap::new(),
            sdp_armed: false,
            functional: true,
            stats: NvdlaStats::default(),
            timeline: Vec::new(),
        }
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &HwConfig {
        &self.cfg
    }

    /// Statistics collected so far.
    #[must_use]
    pub fn stats(&self) -> &NvdlaStats {
        &self.stats
    }

    /// Enable/disable functional computation. When disabled, operations
    /// keep their exact DMA and timing behaviour but write zeros —
    /// used for timing-only sweeps over large models.
    pub fn set_functional(&mut self, functional: bool) {
        self.functional = functional;
    }

    /// Direct access to the DBB port (backdoor).
    pub fn dbb_mut(&mut self) -> &mut D {
        &mut self.dbb
    }

    /// Cycle at which all outstanding operations complete (`now` if
    /// idle) — used by the SoC's fast-forward between polls.
    #[must_use]
    pub fn idle_at(&self, now: Cycle) -> Cycle {
        self.events.iter().map(|e| e.done_at).fold(now, Cycle::max)
    }

    /// Whether any engine is still running at `now`.
    #[must_use]
    pub fn busy(&self, now: Cycle) -> bool {
        self.events.iter().any(|e| e.done_at > now)
    }

    /// Whether an interrupt is (or will be, by `now`) pending: either
    /// unacknowledged status bits or a completion event that has already
    /// fired. Drives the SoC's `wfi` wake logic.
    #[must_use]
    pub fn intr_pending(&self, now: Cycle) -> bool {
        self.intr_status != 0 || self.events.iter().any(|e| e.done_at <= now)
    }

    /// Per-operation execution timeline: (engine block, launch cycle,
    /// completion cycle), in launch order. Feeds per-layer profiling.
    #[must_use]
    pub fn timeline(&self) -> &[OpTrace] {
        &self.timeline
    }

    /// Account CSB reads a polling master answered from an MMIO read
    /// lease (see [`Target::read_lease`]) instead of re-crossing the
    /// fabric. The elided reads are still architecturally performed, so
    /// crediting them here keeps [`NvdlaStats::csb_reads`] identical to
    /// a run without leases.
    pub fn credit_elided_reads(&mut self, n: u64) {
        self.stats.csb_reads += n;
    }

    /// Promote events whose completion time has passed into the
    /// interrupt status register.
    fn promote(&mut self, now: Cycle) {
        let mut status = self.intr_status;
        self.events.retain(|e| {
            if e.done_at <= now {
                status |= e.bits;
                false
            } else {
                true
            }
        });
        self.intr_status = status;
    }

    fn reg(&self, block: Block, offset: u32) -> u32 {
        self.regs
            .get(&(block.base() + offset))
            .copied()
            .unwrap_or(0)
    }

    fn engine_busy_until(&self, block: Block) -> Cycle {
        self.busy_until.get(&block).copied().unwrap_or(0)
    }

    fn engine_stats_mut(&mut self, block: Block) -> &mut EngineStats {
        self.stats.per_engine.entry(block).or_default()
    }

    fn slave_err(addr: u32, reason: &'static str) -> BusError {
        BusError::SlaveError { addr, reason }
    }

    // --- DMA helpers -------------------------------------------------------

    fn dma_read(
        &mut self,
        block: Block,
        addr: u32,
        len: usize,
        at: Cycle,
    ) -> Result<(Vec<u8>, Cycle), BusError> {
        let mut buf = vec![0u8; len];
        let chunk = self.cfg.mcif_burst_bytes as usize;
        let mut t = at;
        // MCIF issues bounded bursts; each pays the memory round trip.
        for (i, piece) in buf.chunks_mut(chunk).enumerate() {
            t = self.dbb.read_block(addr + (i * chunk) as u32, piece, t)?;
        }
        self.engine_stats_mut(block).dma_read_bytes += len as u64;
        Ok((buf, t))
    }

    fn dma_write(
        &mut self,
        block: Block,
        addr: u32,
        data: &[u8],
        at: Cycle,
    ) -> Result<Cycle, BusError> {
        let chunk = self.cfg.mcif_burst_bytes as usize;
        let mut t = at;
        for (i, piece) in data.chunks(chunk).enumerate() {
            t = self.dbb.write_block(addr + (i * chunk) as u32, piece, t)?;
        }
        self.engine_stats_mut(block).dma_write_bytes += data.len() as u64;
        Ok(t)
    }

    // --- Launches ----------------------------------------------------------

    /// Read SDP operands (bias table / eltwise source) and apply the SDP
    /// pipeline to `acc_real`, writing the result. Returns (write-done
    /// cycle, output bytes written).
    fn sdp_emit(
        &mut self,
        sd: &SdpDesc,
        acc_real: Vec<f32>,
        at: Cycle,
    ) -> Result<(Cycle, usize), BusError> {
        let mut t = at;
        let bs = if sd.has(regs::SDP_FLAG_BIAS) {
            let (raw, t2) = self.dma_read(Block::Sdp, sd.bs_addr, sd.c as usize * 8, t)?;
            t = t2;
            Some(sdp::parse_bs_table(&raw))
        } else {
            None
        };
        let input2 = if sd.has(regs::SDP_FLAG_ELTWISE) {
            let bytes = sd.elems() * sd.precision.bytes() as usize;
            let (raw, t2) = self.dma_read(Block::Sdp, sd.src2, bytes, t)?;
            t = t2;
            Some(engines::to_real(&raw, sd.precision, sd.in2_scale))
        } else {
            None
        };
        let out = if self.functional {
            let r = sdp::apply(sd, acc_real, input2, bs.as_ref());
            r
        } else {
            vec![0u8; sd.elems() * sd.precision.bytes() as usize]
        };
        let compute = timing::sdp_cycles(&self.cfg, sd);
        let st = self.engine_stats_mut(Block::Sdp);
        st.ops += 1;
        st.compute_cycles += compute;
        let done = self.dma_write(Block::Sdp, sd.dst, &out, t + compute)?;
        Ok((done, out.len()))
    }

    fn launch_conv(&mut self, addr: u32, now: Cycle) -> Result<Cycle, BusError> {
        let regread = |b: Block, off: u32| self.reg(b, off);
        let cd = ConvDesc::decode(&regread);
        let sd = SdpDesc::decode(&regread);
        if !self.cfg.supports(cd.precision) {
            return Err(Self::slave_err(
                addr,
                "precision not implemented in this config",
            ));
        }
        if !self.sdp_armed || sd.src_mode != SdpSrc::Flying {
            return Err(Self::slave_err(
                addr,
                "conv launched without armed flying SDP",
            ));
        }
        if cd.in_c == 0 || cd.out_c == 0 || cd.kw == 0 || cd.kh == 0 {
            return Err(Self::slave_err(addr, "conv descriptor has zero dimension"));
        }
        if sd.elems() != cd.out_elems() {
            return Err(Self::slave_err(
                addr,
                "SDP surface does not match conv output",
            ));
        }
        self.sdp_armed = false;
        let start = now
            .max(self.engine_busy_until(Block::Cacc))
            .max(self.engine_busy_until(Block::Sdp));

        // Feature + weight fetch (CDMA).
        let (feature, t1) = self.dma_read(Block::Cacc, cd.src, cd.feature_bytes(), start)?;
        let (weights, mut t) = self.dma_read(Block::Cacc, cd.wt_addr, cd.wt_bytes as usize, t1)?;
        // CBUF overflow: weights stream in passes, re-fetching the
        // feature tile each extra pass.
        for _ in 1..timing::cbuf_passes(&self.cfg, cd.wt_bytes) {
            let (_, t2) = self.dma_read(Block::Cacc, cd.src, cd.feature_bytes(), t)?;
            t = t2;
        }

        let acc = if self.functional {
            conv::compute(&cd, &feature, &weights)
        } else {
            vec![0.0f32; cd.out_elems()]
        };
        let compute = timing::conv_cycles(&self.cfg, &cd);
        {
            let st = self.engine_stats_mut(Block::Cacc);
            st.ops += 1;
            st.compute_cycles += compute;
            st.macs += cd.macs();
        }
        let (done, _) = self.sdp_emit(&sd, acc, t + compute)?;
        self.busy_until.insert(Block::Cacc, done);
        self.busy_until.insert(Block::Sdp, done);
        self.events.push(Event {
            done_at: done,
            bits: (1 << Block::Cacc.intr_bit().unwrap()) | (1 << Block::Sdp.intr_bit().unwrap()),
        });
        self.timeline.push(OpTrace {
            block: Block::Cacc,
            start,
            done,
        });
        Ok(done)
    }

    fn launch_sdp_standalone(
        &mut self,
        sd: &SdpDesc,
        addr: u32,
        now: Cycle,
    ) -> Result<Cycle, BusError> {
        if !self.cfg.supports(sd.precision) {
            return Err(Self::slave_err(
                addr,
                "precision not implemented in this config",
            ));
        }
        let start = now.max(self.engine_busy_until(Block::Sdp));
        let bytes = sd.elems() * sd.precision.bytes() as usize;
        let (raw, t) = self.dma_read(Block::Sdp, sd.src, bytes, start)?;
        let input = engines::to_real(&raw, sd.precision, sd.in_scale);
        let (done, _) = self.sdp_emit(sd, input, t)?;
        self.busy_until.insert(Block::Sdp, done);
        self.events.push(Event {
            done_at: done,
            bits: 1 << Block::Sdp.intr_bit().unwrap(),
        });
        self.timeline.push(OpTrace {
            block: Block::Sdp,
            start,
            done,
        });
        Ok(done)
    }

    fn launch_pdp(&mut self, addr: u32, now: Cycle) -> Result<Cycle, BusError> {
        let regread = |b: Block, off: u32| self.reg(b, off);
        let d = PdpDesc::decode(&regread);
        if !self.cfg.supports(d.precision) {
            return Err(Self::slave_err(
                addr,
                "precision not implemented in this config",
            ));
        }
        if d.k == 0 || d.c == 0 {
            return Err(Self::slave_err(addr, "pdp descriptor has zero dimension"));
        }
        let start = now.max(self.engine_busy_until(Block::Pdp));
        let in_bytes = (d.c * d.in_h * d.in_w * d.precision.bytes()) as usize;
        let (raw, t) = self.dma_read(Block::Pdp, d.src, in_bytes, start)?;
        let out = if self.functional {
            pdp::compute(&d, &raw)
        } else {
            vec![0u8; d.out_elems() * d.precision.bytes() as usize]
        };
        let compute = timing::pdp_cycles(&self.cfg, &d);
        {
            let st = self.engine_stats_mut(Block::Pdp);
            st.ops += 1;
            st.compute_cycles += compute;
        }
        let done = self.dma_write(Block::Pdp, d.dst, &out, t + compute)?;
        self.busy_until.insert(Block::Pdp, done);
        self.events.push(Event {
            done_at: done,
            bits: 1 << Block::Pdp.intr_bit().unwrap(),
        });
        self.timeline.push(OpTrace {
            block: Block::Pdp,
            start,
            done,
        });
        Ok(done)
    }

    fn launch_cdp(&mut self, addr: u32, now: Cycle) -> Result<Cycle, BusError> {
        let regread = |b: Block, off: u32| self.reg(b, off);
        let d = CdpDesc::decode(&regread);
        if !self.cfg.supports(d.precision) {
            return Err(Self::slave_err(
                addr,
                "precision not implemented in this config",
            ));
        }
        let start = now.max(self.engine_busy_until(Block::Cdp));
        let bytes = d.elems() * d.precision.bytes() as usize;
        let (raw, t) = self.dma_read(Block::Cdp, d.src, bytes, start)?;
        let out = if self.functional {
            cdp::compute(&d, &raw)
        } else {
            vec![0u8; bytes]
        };
        let compute = timing::cdp_cycles(&self.cfg, &d);
        {
            let st = self.engine_stats_mut(Block::Cdp);
            st.ops += 1;
            st.compute_cycles += compute;
        }
        let done = self.dma_write(Block::Cdp, d.dst, &out, t + compute)?;
        self.busy_until.insert(Block::Cdp, done);
        self.events.push(Event {
            done_at: done,
            bits: 1 << Block::Cdp.intr_bit().unwrap(),
        });
        self.timeline.push(OpTrace {
            block: Block::Cdp,
            start,
            done,
        });
        Ok(done)
    }

    fn launch_copy(&mut self, block: Block, now: Cycle) -> Result<Cycle, BusError> {
        let regread = |b: Block, off: u32| self.reg(b, off);
        let d = CopyDesc::decode(block, &regread);
        let start = now.max(self.engine_busy_until(block));
        let (raw, t) = self.dma_read(block, d.src, d.len as usize, start)?;
        let done = self.dma_write(block, d.dst, &raw, t + self.cfg.op_latency)?;
        self.engine_stats_mut(block).ops += 1;
        self.busy_until.insert(block, done);
        self.events.push(Event {
            done_at: done,
            bits: 1 << block.intr_bit().unwrap(),
        });
        self.timeline.push(OpTrace { block, start, done });
        Ok(done)
    }

    fn handle_op_enable(
        &mut self,
        block: Block,
        addr: u32,
        value: u32,
        now: Cycle,
    ) -> Result<(), BusError> {
        if value & 1 == 0 {
            return Ok(());
        }
        match block {
            Block::Cacc => {
                self.launch_conv(addr, now)?;
            }
            Block::Sdp => {
                let regread = |b: Block, off: u32| self.reg(b, off);
                let sd = SdpDesc::decode(&regread);
                if sd.src_mode == SdpSrc::Flying {
                    self.sdp_armed = true;
                } else {
                    self.launch_sdp_standalone(&sd, addr, now)?;
                }
            }
            Block::Pdp => {
                self.launch_pdp(addr, now)?;
            }
            Block::Cdp => {
                self.launch_cdp(addr, now)?;
            }
            Block::Rubik | Block::Bdma => {
                self.launch_copy(block, now)?;
            }
            // CDMA/CSC/CMAC enables are accepted (parts of the conv
            // pipeline); the pipeline launches on the CACC enable.
            Block::Cdma | Block::Csc | Block::Cmac | Block::Glb => {}
        }
        Ok(())
    }
}

impl<D: Reset> Reset for Nvdla<D> {
    /// Power-on reset in place: registers, interrupts, in-flight events,
    /// statistics and the timeline all clear, then the DBB path resets
    /// downstream. The hardware configuration is construction state and
    /// survives; the functional flag returns to its power-on default
    /// (callers that run timing-only set it per run).
    fn reset(&mut self) {
        self.regs.clear();
        self.intr_status = 0;
        self.events.clear();
        self.busy_until.clear();
        self.sdp_armed = false;
        self.functional = true;
        self.stats = NvdlaStats::default();
        self.timeline.clear();
        self.dbb.reset();
    }
}

/// CSB latency of a register access (on top of the APB bridge path).
const CSB_LATENCY: Cycle = 1;

impl<D: Target> Target for Nvdla<D> {
    fn access(&mut self, req: &Request, now: Cycle) -> Result<Response, BusError> {
        if req.size != AccessSize::Word {
            return Err(Self::slave_err(req.addr, "CSB supports only 32-bit access"));
        }
        self.promote(now);
        let block = Block::of_addr(req.addr).ok_or(BusError::DecodeError { addr: req.addr })?;
        let offset = req.addr & 0xFFF;
        let done_at = now + CSB_LATENCY;
        match req.kind {
            AccessKind::Read => {
                self.stats.csb_reads += 1;
                let data = match (block, offset) {
                    (Block::Glb, regs::GLB_HW_VERSION) => regs::HW_VERSION_VALUE,
                    (Block::Glb, regs::GLB_INTR_STATUS) => self.intr_status,
                    (_, regs::REG_STATUS) => u32::from(self.engine_busy_until(block) > now),
                    _ => self.regs.get(&req.addr).copied().unwrap_or(0),
                };
                Ok(Response {
                    data: u64::from(data),
                    done_at,
                })
            }
            AccessKind::Write(v) => {
                self.stats.csb_writes += 1;
                let v = v as u32;
                match (block, offset) {
                    (Block::Glb, regs::GLB_INTR_STATUS) => {
                        self.intr_status &= !v; // write-1-to-clear
                    }
                    (Block::Glb, regs::GLB_INTR_SET) => {
                        self.intr_status |= v;
                    }
                    (_, regs::REG_OP_ENABLE) => {
                        self.regs.insert(req.addr, v);
                        self.handle_op_enable(block, req.addr, v, now)?;
                    }
                    _ => {
                        self.regs.insert(req.addr, v);
                    }
                }
                Ok(Response::ack(done_at))
            }
        }
    }

    fn read_lease(&self, addr: u32, now: Cycle) -> Option<Cycle> {
        // Only the interrupt-status register is leased: the value a
        // read arriving at cycle `t` observes is `intr_status` plus the
        // bits of events with `done_at <= t`, so it is constant until
        // the earliest completion still pending at `now`. Every path
        // that can change it sooner — `op_enable` launches, w1c clears,
        // `GLB_INTR_SET` — is a CSB *write*, which drops the master's
        // lease. Reads of it are side-effect-free (`promote` only folds
        // already-due events into the register; the observed value is
        // invariant under that), and CSB read latency is a constant.
        if Block::of_addr(addr) != Some(Block::Glb) || addr & 0xFFF != regs::GLB_INTR_STATUS {
            return None;
        }
        let mut until = Cycle::MAX;
        for e in &self.events {
            if e.done_at <= now {
                // A due-but-unpromoted event means `now` precedes the
                // read we were called for; decline rather than reason
                // about the past.
                return None;
            }
            until = until.min(e.done_at);
        }
        Some(until)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rvnv_bus::dram::Dram;
    use rvnv_bus::sram::Sram;

    type TestNvdla = Nvdla<Sram>;

    fn small() -> TestNvdla {
        Nvdla::new(HwConfig::nv_small(), Sram::new(1 << 20))
    }

    fn w(n: &mut TestNvdla, block: Block, off: u32, v: u32, t: Cycle) -> Cycle {
        n.access(&Request::write32(block.base() + off, v), t)
            .unwrap()
            .done_at
    }

    fn r(n: &mut TestNvdla, block: Block, off: u32, t: Cycle) -> u32 {
        n.access(&Request::read32(block.base() + off), t)
            .unwrap()
            .data32()
    }

    #[test]
    fn hw_version_reads() {
        let mut n = small();
        assert_eq!(
            r(&mut n, Block::Glb, regs::GLB_HW_VERSION, 0),
            regs::HW_VERSION_VALUE
        );
    }

    #[test]
    fn plain_registers_store_and_load() {
        let mut n = small();
        w(&mut n, Block::Cdma, regs::CDMA_DATAIN_ADDR, 0x1234, 0);
        assert_eq!(r(&mut n, Block::Cdma, regs::CDMA_DATAIN_ADDR, 1), 0x1234);
    }

    #[test]
    fn intr_set_and_w1c() {
        let mut n = small();
        w(&mut n, Block::Glb, regs::GLB_INTR_SET, 0b110, 0);
        assert_eq!(r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 1), 0b110);
        w(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 0b010, 2);
        assert_eq!(r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 3), 0b100);
    }

    #[test]
    fn csb_rejects_narrow_access() {
        let mut n = small();
        let e = n
            .access(&Request::read(0, AccessSize::Byte), 0)
            .unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
    }

    /// Program a 1x1 conv: 2 channels in, 2 out (identity-ish weights),
    /// with bias and relu through the flying SDP.
    fn program_simple_conv(n: &mut TestNvdla) {
        // Data at 0x100: 2 channels of 2x2 int8.
        let feature: &[i8] = &[1, 2, 3, 4, -1, -2, -3, -4];
        let fbytes: Vec<u8> = feature.iter().map(|&v| v as u8).collect();
        n.dbb_mut().load(0x100, &fbytes).unwrap();
        // Weights at 0x200: OIHW 2x2x1x1: out0 = ch0 + ch1, out1 = ch0 - ch1.
        let wts: &[i8] = &[1, 1, 1, -1];
        let wb: Vec<u8> = wts.iter().map(|&v| v as u8).collect();
        n.dbb_mut().load(0x200, &wb).unwrap();

        let mut t = 0;
        t = w(n, Block::Cdma, regs::CDMA_DATAIN_ADDR, 0x100, t);
        t = w(n, Block::Cdma, regs::CDMA_DATAIN_SIZE0, 2 | (2 << 16), t);
        t = w(n, Block::Cdma, regs::CDMA_DATAIN_SIZE1, 2, t);
        t = w(n, Block::Cdma, regs::CDMA_WEIGHT_ADDR, 0x200, t);
        t = w(n, Block::Cdma, regs::CDMA_WEIGHT_BYTES, 4, t);
        t = w(n, Block::Cdma, regs::CDMA_CONV_STRIDE, 1, t);
        t = w(n, Block::Cdma, regs::CDMA_IN_SCALE, 1.0f32.to_bits(), t);
        t = w(n, Block::Cdma, regs::CDMA_WT_SCALE, 1.0f32.to_bits(), t);
        t = w(n, Block::Csc, regs::CSC_DATAOUT_SIZE0, 2 | (2 << 16), t);
        t = w(n, Block::Csc, regs::CSC_DATAOUT_SIZE1, 2, t);
        t = w(n, Block::Csc, regs::CSC_WEIGHT_SIZE0, 1 | (1 << 16), t);
        t = w(n, Block::Csc, regs::CSC_GROUPS, 1, t);
        t = w(n, Block::Cmac, regs::CMAC_MISC, 0, t);
        // SDP flying, relu, out to 0x300, out_scale 1.0.
        t = w(n, Block::Sdp, regs::SDP_SRC, 0, t);
        t = w(n, Block::Sdp, regs::SDP_DST_ADDR, 0x300, t);
        t = w(n, Block::Sdp, regs::SDP_SIZE0, 2 | (2 << 16), t);
        t = w(n, Block::Sdp, regs::SDP_SIZE1, 2, t);
        t = w(n, Block::Sdp, regs::SDP_FLAGS, regs::SDP_FLAG_RELU, t);
        t = w(n, Block::Sdp, regs::SDP_OUT_SCALE, 1.0f32.to_bits(), t);
        t = w(n, Block::Sdp, regs::SDP_PRECISION, 0, t);
        t = w(n, Block::Sdp, regs::REG_OP_ENABLE, 1, t);
        w(n, Block::Cacc, regs::REG_OP_ENABLE, 1, t);
    }

    #[test]
    fn conv_through_registers_computes_and_interrupts() {
        let mut n = small();
        program_simple_conv(&mut n);
        // Immediately after launch nothing is complete.
        assert_eq!(r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 30), 0);
        assert_eq!(r(&mut n, Block::Cacc, regs::REG_STATUS, 31), 1, "running");
        // Poll far in the future: both CACC and SDP bits raised.
        let status = r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 1_000_000);
        assert_eq!(status, 0b11);
        assert_eq!(r(&mut n, Block::Cacc, regs::REG_STATUS, 1_000_001), 0);
        // Output: out0 = ch0+ch1 = 0 everywhere (relu of 0); out1 = ch0-ch1.
        let out = n.dbb_mut().bytes()[0x300..0x308].to_vec();
        assert_eq!(&out[..4], &[0, 0, 0, 0]);
        let o1: Vec<i8> = out[4..].iter().map(|&b| b as i8).collect();
        assert_eq!(o1, vec![2, 4, 6, 8]);
    }

    #[test]
    fn conv_without_armed_sdp_is_error() {
        let mut n = small();
        let e = n
            .access(
                &Request::write32(Block::Cacc.base() + regs::REG_OP_ENABLE, 1),
                0,
            )
            .unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
    }

    #[test]
    fn fp16_rejected_on_nv_small() {
        let mut n = small();
        program_simple_conv(&mut n); // consumes the armed SDP
        let _ = r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 1_000_000);
        w(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 0b11, 1_000_001);
        // Re-arm with fp16: launch must fail.
        let t = 1_000_002;
        w(&mut n, Block::Cmac, regs::CMAC_MISC, 1, t);
        w(&mut n, Block::Sdp, regs::REG_OP_ENABLE, 1, t + 1);
        let e = n
            .access(
                &Request::write32(Block::Cacc.base() + regs::REG_OP_ENABLE, 1),
                t + 2,
            )
            .unwrap_err();
        assert!(matches!(e, BusError::SlaveError { .. }));
    }

    #[test]
    fn standalone_sdp_eltwise_add() {
        let mut n = small();
        let a: Vec<u8> = [10i8, 20, 30, 40].iter().map(|&v| v as u8).collect();
        let b: Vec<u8> = [1i8, 2, 3, 4].iter().map(|&v| v as u8).collect();
        n.dbb_mut().load(0x400, &a).unwrap();
        n.dbb_mut().load(0x500, &b).unwrap();
        let mut t = 0;
        t = w(&mut n, Block::Sdp, regs::SDP_SRC, 1, t);
        t = w(&mut n, Block::Sdp, regs::SDP_SRC_ADDR, 0x400, t);
        t = w(&mut n, Block::Sdp, regs::SDP_SRC2_ADDR, 0x500, t);
        t = w(&mut n, Block::Sdp, regs::SDP_DST_ADDR, 0x600, t);
        t = w(&mut n, Block::Sdp, regs::SDP_SIZE0, 2 | (2 << 16), t);
        t = w(&mut n, Block::Sdp, regs::SDP_SIZE1, 1, t);
        t = w(
            &mut n,
            Block::Sdp,
            regs::SDP_FLAGS,
            regs::SDP_FLAG_ELTWISE,
            t,
        );
        t = w(&mut n, Block::Sdp, regs::SDP_IN_SCALE, 1.0f32.to_bits(), t);
        t = w(&mut n, Block::Sdp, regs::SDP_IN2_SCALE, 1.0f32.to_bits(), t);
        t = w(&mut n, Block::Sdp, regs::SDP_OUT_SCALE, 1.0f32.to_bits(), t);
        w(&mut n, Block::Sdp, regs::REG_OP_ENABLE, 1, t);
        let status = r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 100_000);
        assert_eq!(status & 0b10, 0b10);
        let out: Vec<i8> = n.dbb_mut().bytes()[0x600..0x604]
            .iter()
            .map(|&v| v as i8)
            .collect();
        assert_eq!(out, vec![11, 22, 33, 44]);
    }

    #[test]
    fn pdp_pooling_via_registers() {
        let mut n = small();
        let src: Vec<u8> = vec![1, 5, 2, 3, 4, 2, 1, 8, 0, 1, 2, 3, 4, 5, 6, 7];
        n.dbb_mut().load(0x700, &src).unwrap();
        let mut t = 0;
        t = w(&mut n, Block::Pdp, regs::PDP_SRC_ADDR, 0x700, t);
        t = w(&mut n, Block::Pdp, regs::PDP_DST_ADDR, 0x800, t);
        t = w(&mut n, Block::Pdp, regs::PDP_SIZE_IN, 4 | (4 << 16), t);
        t = w(&mut n, Block::Pdp, regs::PDP_CHANNELS, 1, t);
        t = w(
            &mut n,
            Block::Pdp,
            regs::PDP_POOLING,
            (2 << 8) | (2 << 16),
            t,
        );
        t = w(&mut n, Block::Pdp, regs::PDP_SIZE_OUT, 2 | (2 << 16), t);
        w(&mut n, Block::Pdp, regs::REG_OP_ENABLE, 1, t);
        let status = r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 100_000);
        assert_eq!(status & 0b100, 0b100);
        assert_eq!(&n.dbb_mut().bytes()[0x800..0x804], &[5, 8, 5, 7]);
    }

    #[test]
    fn bdma_copies_bytes() {
        let mut n = small();
        n.dbb_mut().load(0x10, &[9, 8, 7, 6]).unwrap();
        let mut t = 0;
        t = w(&mut n, Block::Bdma, regs::COPY_SRC_ADDR, 0x10, t);
        t = w(&mut n, Block::Bdma, regs::COPY_DST_ADDR, 0x20, t);
        t = w(&mut n, Block::Bdma, regs::COPY_LEN, 4, t);
        w(&mut n, Block::Bdma, regs::REG_OP_ENABLE, 1, t);
        let status = r(&mut n, Block::Glb, regs::GLB_INTR_STATUS, 100_000);
        assert!(status & (1 << 5) != 0);
        assert_eq!(&n.dbb_mut().bytes()[0x20..0x24], &[9, 8, 7, 6]);
    }

    #[test]
    fn reset_replays_identically_to_a_fresh_accelerator() {
        use rvnv_bus::Reset;
        let mut used = small();
        program_simple_conv(&mut used);
        let first_done = used.idle_at(0);
        let _ = r(&mut used, Block::Glb, regs::GLB_INTR_STATUS, 1_000_000);
        used.reset();
        assert_eq!(used.stats().total_ops(), 0);
        assert!(used.timeline().is_empty());
        assert!(!used.intr_pending(u64::MAX));
        // Re-program from scratch: the same launch completes at the same
        // cycle as on a fresh device.
        program_simple_conv(&mut used);
        assert_eq!(used.idle_at(0), first_done);
        let mut fresh = small();
        program_simple_conv(&mut fresh);
        assert_eq!(used.stats(), fresh.stats());
    }

    #[test]
    fn timing_only_mode_keeps_dma_and_cycles() {
        let mut f = small();
        f.set_functional(false);
        program_simple_conv(&mut f);
        let mut g = small();
        program_simple_conv(&mut g);
        assert_eq!(f.idle_at(0), g.idle_at(0), "same completion time");
        assert_eq!(
            f.stats().total_dma_bytes(),
            g.stats().total_dma_bytes(),
            "same traffic"
        );
        // But the output is zeros.
        assert_eq!(&f.dbb_mut().bytes()[0x304..0x308], &[0, 0, 0, 0]);
    }

    #[test]
    fn stats_accumulate_macs_and_csb() {
        let mut n = small();
        program_simple_conv(&mut n);
        let s = n.stats();
        assert!(s.csb_writes > 20);
        assert_eq!(s.engine(Block::Cacc).ops, 1);
        assert_eq!(s.engine(Block::Cacc).macs, 2 * 2 * 2 * 2); // out 2x2x2, in/group 2, 1x1
        assert!(s.engine(Block::Sdp).dma_write_bytes == 8);
    }

    #[test]
    fn dbb_latency_reflected_in_completion() {
        // DRAM-backed DBB completes later than SRAM-backed.
        let mut slow: Nvdla<Dram> =
            Nvdla::new(HwConfig::nv_small(), Dram::new(1 << 20, Default::default()));
        let fb: Vec<u8> = (0..8).collect();
        slow.dbb_mut().load(0x100, &fb).unwrap();
        slow.dbb_mut().load(0x200, &[1, 1, 1, 0xFF]).unwrap();
        // Reuse the same register program via raw writes.
        let mut fast = small();
        program_simple_conv(&mut fast);
        // Program the slow one identically.
        let prog: Vec<(u32, u32)> = fast
            .regs
            .iter()
            .map(|(&a, &v)| (a, v))
            .filter(|&(a, _)| a & 0xFFF != regs::REG_OP_ENABLE)
            .collect();
        let mut t = 0;
        for (a, v) in prog {
            t = slow.access(&Request::write32(a, v), t).unwrap().done_at;
        }
        t = slow
            .access(
                &Request::write32(Block::Sdp.base() + regs::REG_OP_ENABLE, 1),
                t,
            )
            .unwrap()
            .done_at;
        slow.access(
            &Request::write32(Block::Cacc.base() + regs::REG_OP_ENABLE, 1),
            t,
        )
        .unwrap();
        assert!(slow.idle_at(0) > fast.idle_at(0));
    }
}
