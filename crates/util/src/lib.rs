//! Shared seeded-randomness and fingerprint primitives.
//!
//! Three hand-rolled helpers used to live in three different places —
//! the bus fault injector's SplitMix64 mixer, the ISS fuzz suite's
//! xorshift stream, and the nn crate's FNV-1a fingerprint hasher. They
//! are deliberately tiny (this crate has zero dependencies, so the
//! lowest layers can use it), but three private copies meant generators
//! and fingerprints could drift apart one constant at a time. This
//! crate is the single home: [`mix64`] for stateless index-keyed draws,
//! [`SplitMix64`] for sequential streams, [`Fnv`] for content identity.
//! `rvnv_bus::fault` and `rvnv_nn::hash` re-export their old names so
//! existing imports keep working.

/// SplitMix64 mix function (Steele, Lea, Flood 2014) — the same core
/// the vendored `rand` stub uses. Stateless: callers key it by an
/// access index or request number to get random-access draws from a
/// seed, which is what lets the bus fault injector's `reset` preserve
/// its fault stream by contract.
#[must_use]
pub fn mix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A sequential SplitMix64 stream: the golden-weight constant stepping
/// of [`mix64`] turned into an iterator-style RNG. Deterministic per
/// seed, `Copy`-cheap state, and — unlike the vendored `rand` stub —
/// usable from crates that must stay dependency-free.
#[derive(Debug, Clone, Copy)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the stream. Equal seeds give equal streams, forever.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next draw truncated to 32 bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `0..bound`. A modulo draw is biased by at most
    /// `bound / 2^64`, invisible at the bounds fuzzing uses (< 2^32);
    /// `bound == 0` is treated as 1 so callers can pass raw lengths.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform draw in the inclusive range `lo..=hi` (requires
    /// `lo <= hi`).
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.below(hi - lo + 1)
    }

    /// A coin that lands true `num` times out of `den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }

    /// Pick a reference out of a non-empty slice.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }
}

/// An incremental FNV-1a 64-bit hasher over word-sized chunks.
///
/// One hash implementation feeds every content-identity check in the
/// workspace — `rvnv_nn`'s network fingerprint and the compiler's
/// weight-image fingerprint — so the fold can never silently diverge
/// between them. Weight slices fold two `f32`s (or eight bytes) per
/// step: fingerprinting even a ~100 MB model costs tens of
/// milliseconds, far below the compilations and simulated inferences
/// the fingerprints gate.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// Start from the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Fold one word.
    pub fn mix(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(0x0100_0000_01b3);
    }

    /// Fold a byte slice (length-prefixed; tail zero-padded to a word).
    pub fn bytes(&mut self, data: &[u8]) {
        self.mix(data.len() as u64);
        let mut words = data.chunks_exact(8);
        for w in &mut words {
            self.mix(u64::from_le_bytes(w.try_into().expect("8 bytes")));
        }
        let rem = words.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.mix(u64::from_le_bytes(tail));
        }
    }

    /// Fold a string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Fold an `f32` slice by bit pattern, two values per step.
    pub fn floats(&mut self, data: &[f32]) {
        self.mix(data.len() as u64);
        let mut pairs = data.chunks_exact(2);
        for p in &mut pairs {
            self.mix(u64::from(p[0].to_bits()) | u64::from(p[1].to_bits()) << 32);
        }
        if let [last] = pairs.remainder() {
            self.mix(u64::from(last.to_bits()));
        }
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_deterministic_and_sensitive() {
        let hash = |f: &dyn Fn(&mut Fnv)| {
            let mut h = Fnv::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(
            hash(&|h| h.bytes(b"abcdefghij")),
            hash(&|h| h.bytes(b"abcdefghij"))
        );
        assert_ne!(
            hash(&|h| h.bytes(b"abcdefghij")),
            hash(&|h| h.bytes(b"abcdefghiK"))
        );
        // Length prefix distinguishes a short slice from its padding.
        assert_ne!(hash(&|h| h.bytes(b"ab")), hash(&|h| h.bytes(b"ab\0\0")));
        assert_ne!(
            hash(&|h| h.floats(&[1.0, 2.0])),
            hash(&|h| h.floats(&[2.0, 1.0]))
        );
        // -0.0 and 0.0 are different bit patterns, hence different.
        assert_ne!(hash(&|h| h.floats(&[0.0])), hash(&|h| h.floats(&[-0.0])));
    }

    #[test]
    fn splitmix_stream_is_the_mixer_unrolled() {
        // The stream and the stateless mixer must agree: draw n of the
        // stream == mix64 keyed by seed + n*GOLDEN. This is the
        // anti-drift contract the unification exists for.
        let seed = 0xDEAD_BEEF_u64;
        let mut rng = SplitMix64::new(seed);
        for n in 1..=64u64 {
            let keyed = mix64(seed.wrapping_add((n - 1).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
            assert_eq!(rng.next_u64(), keyed, "draw {n}");
        }
    }

    #[test]
    fn splitmix_bounds_hold() {
        let mut rng = SplitMix64::new(7);
        for _ in 0..10_000 {
            let v = rng.range(3, 17);
            assert!((3..=17).contains(&v));
            assert!(rng.below(5) < 5);
        }
        assert_eq!(rng.below(0), 0);
        // Replay: same seed, same stream.
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
